//! Differential property tests over the estimator implementations:
//!
//! * the bit-packed estimator must agree **bit-exactly** with the scalar
//!   reference implementation on random observation matrices;
//! * the SIMD kernel tiers (AVX-512 / AVX2 / 4-wide portable /
//!   dispatcher) must agree bit-exactly with each other and with scalar
//!   counting — the AVX-512 assertions run only where the host supports
//!   `avx512f` + `avx512vpopcntdq` and skip cleanly elsewhere;
//! * the zero-copy memory tier ([`ObservationsView`] borrowed from the
//!   heap, parsed in place from a v3 block, or served from a mapped
//!   file) must agree bit-exactly with the owning estimator on every
//!   query family;
//! * the [`StreamingEstimator`]'s accumulators must agree bit-exactly
//!   with the batch estimator at **every prefix** of an interleaved
//!   push/query sequence.
//!
//! All of the above cover the four query families:
//!
//! 1. single-path marginals `P(Y_i = 0)` / `P(Y_i = 1)`;
//! 2. joint goodness `P(Y_{i1} = 0, ..., Y_{ik} = 0)` (including the
//!    batch pair API);
//! 3. all-paths-good `P(ψ(S) = ∅)`;
//! 4. exact congestion patterns `P(ψ(S) = ψ(A))` (including the batch
//!    API).
//!
//! Every implementation computes `count / num_snapshots` with integer
//! counts, so the assertions use `==`, not an epsilon.

use std::collections::BTreeSet;

use netcorr_measure::bitset::simd;
use netcorr_measure::reference::{ScalarEstimator, ScalarObservations};
use netcorr_measure::{
    MappedObservations, ObservationsView, PathObservations, ProbabilityEstimator,
    StreamingEstimator,
};
use netcorr_topology::path::PathId;
use proptest::prelude::*;

/// Upper bounds of the random matrices; snapshot counts beyond 64 exercise
/// multi-word lanes and the tail-masking of the last word.
const MAX_PATHS: usize = 6;
const MAX_SNAPSHOTS: usize = 150;

/// Builds packed and scalar stores from the same random cell pool,
/// truncated to `paths × snapshots`.
fn build_both(
    paths: usize,
    snapshots: usize,
    cells: &[bool],
) -> (PathObservations, ScalarObservations) {
    let mut packed = PathObservations::new(paths);
    let mut scalar = ScalarObservations::new(paths);
    for s in 0..snapshots {
        let row = &cells[s * paths..(s + 1) * paths];
        packed.record_snapshot(row).unwrap();
        scalar.record_snapshot(row).unwrap();
    }
    (packed, scalar)
}

/// Strategy for the flattened cell pool (consumed row by row).
fn cell_pool() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(0usize..2, MAX_PATHS * MAX_SNAPSHOTS)
        .prop_map(|cells| cells.into_iter().map(|c| c == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_path_marginals_agree(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        for p in 0..paths {
            prop_assert_eq!(
                packed_est.prob_path_good(PathId(p)).unwrap(),
                scalar_est.prob_path_good(PathId(p)).unwrap()
            );
            prop_assert_eq!(
                packed_est.prob_path_congested(PathId(p)).unwrap(),
                scalar_est.prob_path_congested(PathId(p)).unwrap()
            );
        }
    }

    #[test]
    fn joint_goodness_agrees(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        // Every pair (including degenerate equal pairs), the full path
        // set, and the empty set.
        let mut pairs = Vec::new();
        for a in 0..paths {
            for b in a..paths {
                pairs.push((PathId(a), PathId(b)));
            }
        }
        let batch = packed_est.prob_pairs_good(&pairs).unwrap();
        let log_batch = packed_est.log_prob_pairs_good(&pairs).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let expected = scalar_est.prob_paths_good(&[a, b]).unwrap();
            prop_assert_eq!(packed_est.prob_paths_good(&[a, b]).unwrap(), expected);
            prop_assert_eq!(batch[i], expected);
            prop_assert_eq!(log_batch[i], scalar_est.log_prob_paths_good(&[a, b]).unwrap());
        }
        let all: Vec<PathId> = (0..paths).map(PathId).collect();
        prop_assert_eq!(
            packed_est.prob_paths_good(&all).unwrap(),
            scalar_est.prob_paths_good(&all).unwrap()
        );
        prop_assert_eq!(
            packed_est.prob_paths_good(&[]).unwrap(),
            scalar_est.prob_paths_good(&[]).unwrap()
        );
    }

    #[test]
    fn all_paths_good_agrees(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        prop_assert_eq!(packed_est.prob_all_paths_good(), scalar_est.prob_all_paths_good());
    }

    #[test]
    fn exact_patterns_agree(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
        selector in 0u64..u64::MAX,
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        // Patterns: empty, a random subset, every singleton, and the first
        // snapshot's own congestion set (guaranteeing a non-zero match).
        let mut patterns: Vec<BTreeSet<PathId>> = vec![BTreeSet::new()];
        patterns.push(
            (0..paths)
                .filter(|p| selector >> (p % 64) & 1 == 1)
                .map(PathId)
                .collect(),
        );
        for p in 0..paths {
            patterns.push(BTreeSet::from([PathId(p)]));
        }
        patterns.push(packed.congested_paths(0).into_iter().collect());
        let batch = packed_est.prob_exactly_congested_batch(&patterns).unwrap();
        for (i, pattern) in patterns.iter().enumerate() {
            let expected = scalar_est.prob_exactly_congested(pattern).unwrap();
            prop_assert_eq!(packed_est.prob_exactly_congested(pattern).unwrap(), expected);
            prop_assert_eq!(batch[i], expected);
        }
    }

    #[test]
    fn simd_portable_and_scalar_kernels_agree(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
        selector in 0u64..u64::MAX,
    ) {
        let (packed, _) = build_both(paths, snapshots, &cells);
        let lanes = packed.lanes();
        let used = lanes.used_words();
        let tail = lanes.last_word_mask();
        let cell = |s: usize, p: usize| cells[s * paths + p];

        // Family 2: pair-good kernel, every pair, all three tiers against
        // a scalar count over the raw cells.
        for a in 0..paths {
            for b in a..paths {
                let expected = (0..snapshots).filter(|&s| !cell(s, a) && !cell(s, b)).count();
                let la = lanes.lane(a);
                let lb = lanes.lane(b);
                prop_assert_eq!(simd::pair_good_count(la, lb, tail), expected);
                prop_assert_eq!(simd::pair_good_count_portable(la, lb, tail), expected);
                if let Some(avx2) = simd::pair_good_count_avx2(la, lb, tail) {
                    prop_assert_eq!(avx2, expected);
                }
                if let Some(avx512) = simd::pair_good_count_avx512(la, lb, tail) {
                    prop_assert_eq!(avx512, expected);
                }
            }
        }

        // Families 1–3: the k-lane all-good kernel on the selected subset
        // of paths (k = 0 is the vacuous count, k = 1 the marginal).
        let subset: Vec<usize> = (0..paths).filter(|p| selector >> (p % 64) & 1 == 1).collect();
        for lane_set in [Vec::new(), vec![subset.first().copied().unwrap_or(0)], subset] {
            let refs: Vec<&[u64]> = lane_set.iter().map(|&p| lanes.lane(p)).collect();
            let expected = (0..snapshots)
                .filter(|&s| lane_set.iter().all(|&p| !cell(s, p)))
                .count();
            prop_assert_eq!(simd::all_good_count(&refs, used, tail), expected);
            prop_assert_eq!(simd::all_good_count_portable(&refs, used, tail), expected);
            if let Some(avx2) = simd::all_good_count_avx2(&refs, used, tail) {
                prop_assert_eq!(avx2, expected);
            }
            if let Some(avx512) = simd::all_good_count_avx512(&refs, used, tail) {
                prop_assert_eq!(avx512, expected);
            }
        }

        // Families 3–4: row kernels against scalar row scans.
        let rows = packed.rows();
        let zero_expected = (0..snapshots)
            .filter(|&s| (0..paths).all(|p| !cell(s, p)))
            .count();
        prop_assert_eq!(simd::count_zero_rows(rows.words(), rows.words_per_row()), zero_expected);
        prop_assert_eq!(
            simd::count_zero_rows_portable(rows.words(), rows.words_per_row()),
            zero_expected
        );
        if let Some(avx2) = simd::count_zero_rows_avx2(rows.words(), rows.words_per_row()) {
            prop_assert_eq!(avx2, zero_expected);
        }
        if let Some(avx512) = simd::count_zero_rows_avx512(rows.words(), rows.words_per_row()) {
            prop_assert_eq!(avx512, zero_expected);
        }
        let target: Vec<usize> = (0..paths).filter(|p| selector >> ((p + 7) % 64) & 1 == 1).collect();
        let mask = rows.pack_mask(target.iter().copied());
        let eq_expected = (0..snapshots)
            .filter(|&s| (0..paths).all(|p| cell(s, p) == target.contains(&p)))
            .count();
        prop_assert_eq!(
            simd::count_equal_rows(rows.words(), rows.words_per_row(), &mask),
            eq_expected
        );
        prop_assert_eq!(
            simd::count_equal_rows_portable(rows.words(), rows.words_per_row(), &mask),
            eq_expected
        );
        if let Some(avx2) = simd::count_equal_rows_avx2(rows.words(), rows.words_per_row(), &mask) {
            prop_assert_eq!(avx2, eq_expected);
        }
        if let Some(avx512) =
            simd::count_equal_rows_avx512(rows.words(), rows.words_per_row(), &mask)
        {
            prop_assert_eq!(avx512, eq_expected);
        }
        let masks = vec![mask, vec![0u64; rows.words_per_row()]];
        let mut counts = vec![0usize; 2];
        simd::match_rows_batch(rows.words(), rows.words_per_row(), &masks, &mut counts);
        prop_assert_eq!(&counts, &vec![eq_expected, zero_expected]);
        let mut portable_counts = vec![0usize; 2];
        simd::match_rows_batch_portable(
            rows.words(),
            rows.words_per_row(),
            &masks,
            &mut portable_counts,
        );
        prop_assert_eq!(&portable_counts, &counts);
        let mut avx2_counts = vec![0usize; 2];
        if simd::match_rows_batch_avx2(rows.words(), rows.words_per_row(), &masks, &mut avx2_counts)
        {
            prop_assert_eq!(&avx2_counts, &counts);
        }
        let mut avx512_counts = vec![0usize; 2];
        if simd::match_rows_batch_avx512(
            rows.words(),
            rows.words_per_row(),
            &masks,
            &mut avx512_counts,
        ) {
            prop_assert_eq!(&avx512_counts, &counts);
        }
    }

    #[test]
    fn zero_copy_views_agree_with_the_owning_estimator(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
        selector in 0u64..u64::MAX,
    ) {
        let (packed, _) = build_both(paths, snapshots, &cells);
        let owning = ProbabilityEstimator::new(&packed).unwrap();

        // Three routes into the zero-copy tier: a borrow of the owned
        // store, and a memory-mapped v3 file (with its heap-read control
        // arm) — all must answer every query family bit-identically.
        let file = std::env::temp_dir().join(format!(
            "netcorr_differential_view_{}",
            std::process::id()
        ));
        std::fs::write(&file, packed.to_binary()).unwrap();
        let mapped = MappedObservations::open(&file).unwrap();
        let heap_read = MappedObservations::open_heap(&file).unwrap();
        let views = [
            ObservationsView::from_observations(&packed),
            mapped.view(),
            heap_read.view(),
        ];

        let mut pairs = Vec::new();
        for a in 0..paths {
            for b in a..paths {
                pairs.push((PathId(a), PathId(b)));
            }
        }
        let all: Vec<PathId> = (0..paths).map(PathId).collect();
        let pattern: BTreeSet<PathId> = (0..paths)
            .filter(|p| selector >> (p % 64) & 1 == 1)
            .map(PathId)
            .collect();
        let patterns = [BTreeSet::new(), pattern];

        for view in views {
            prop_assert_eq!(view.num_snapshots(), snapshots);
            prop_assert_eq!(view.probability_floor(), owning.probability_floor());
            for p in 0..paths {
                prop_assert_eq!(
                    view.prob_path_good(PathId(p)).unwrap(),
                    owning.prob_path_good(PathId(p)).unwrap()
                );
                prop_assert_eq!(
                    view.prob_path_congested(PathId(p)).unwrap(),
                    owning.prob_path_congested(PathId(p)).unwrap()
                );
            }
            prop_assert_eq!(
                view.prob_pairs_good(&pairs).unwrap(),
                owning.prob_pairs_good(&pairs).unwrap()
            );
            prop_assert_eq!(
                view.log_prob_pairs_good(&pairs).unwrap(),
                owning.log_prob_pairs_good(&pairs).unwrap()
            );
            prop_assert_eq!(
                view.prob_paths_good(&all).unwrap(),
                owning.prob_paths_good(&all).unwrap()
            );
            prop_assert_eq!(
                view.log_prob_paths_good(&all).unwrap(),
                owning.log_prob_paths_good(&all).unwrap()
            );
            prop_assert_eq!(
                view.prob_all_paths_good().unwrap(),
                owning.prob_all_paths_good()
            );
            for pattern in &patterns {
                prop_assert_eq!(
                    view.prob_exactly_congested(pattern).unwrap(),
                    owning.prob_exactly_congested(pattern).unwrap()
                );
            }
            prop_assert_eq!(
                view.prob_exactly_congested_batch(&patterns).unwrap(),
                owning.prob_exactly_congested_batch(&patterns).unwrap()
            );
            prop_assert_eq!(view.ever_congested_paths(), owning.ever_congested_paths());
            prop_assert_eq!(view.to_observations().unwrap(), packed.clone());
        }
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn streaming_matches_batch_under_interleaved_pushes_and_queries(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
        selector in 0u64..u64::MAX,
    ) {
        let mut streaming = StreamingEstimator::new(paths);
        // Register every pair and two patterns up front; one more pair and
        // pattern are registered mid-stream (exercising catch-up).
        let mut pairs = Vec::new();
        for a in 0..paths {
            for b in a..paths {
                pairs.push((PathId(a), PathId(b)));
            }
        }
        let (early_pairs, late_pairs) = pairs.split_at(pairs.len() / 2 + 1);
        streaming.register_pairs(early_pairs).unwrap();
        let pattern_a: BTreeSet<PathId> = (0..paths)
            .filter(|p| selector >> (p % 64) & 1 == 1)
            .map(PathId)
            .collect();
        let pattern_b = BTreeSet::new();
        streaming.register_pattern(&pattern_a).unwrap();

        let mut prefix = PathObservations::new(paths);
        for s in 0..snapshots {
            let row = &cells[s * paths..(s + 1) * paths];
            streaming.push_snapshot(row).unwrap();
            prefix.record_snapshot(row).unwrap();
            if s == snapshots / 2 {
                streaming.register_pairs(late_pairs).unwrap();
                streaming.register_pattern(&pattern_b).unwrap();
            }
            // Interleaved queries at a few prefixes (every 13th push and
            // the last), compared bit-exactly against a batch estimator
            // over the same prefix.
            if s % 13 != 0 && s + 1 != snapshots {
                continue;
            }
            let batch = ProbabilityEstimator::new(&prefix).unwrap();
            for p in 0..paths {
                prop_assert_eq!(
                    streaming.prob_path_good(PathId(p)).unwrap(),
                    batch.prob_path_good(PathId(p)).unwrap()
                );
                prop_assert_eq!(
                    streaming.log_prob_path_good(PathId(p)).unwrap(),
                    batch.log_prob_paths_good(&[PathId(p)]).unwrap()
                );
            }
            let registered: &[(PathId, PathId)] = if s >= snapshots / 2 {
                &pairs
            } else {
                early_pairs
            };
            prop_assert_eq!(
                streaming.prob_pairs_good(registered).unwrap(),
                batch.prob_pairs_good(registered).unwrap()
            );
            prop_assert_eq!(
                streaming.log_prob_pairs_good(registered).unwrap(),
                batch.log_prob_pairs_good(registered).unwrap()
            );
            prop_assert_eq!(
                streaming.prob_all_paths_good().unwrap(),
                batch.prob_all_paths_good()
            );
            prop_assert_eq!(
                streaming.prob_exactly_congested(&pattern_a).unwrap(),
                batch.prob_exactly_congested(&pattern_a).unwrap()
            );
            if s >= snapshots / 2 {
                prop_assert_eq!(
                    streaming.prob_exactly_congested(&pattern_b).unwrap(),
                    batch.prob_exactly_congested(&pattern_b).unwrap()
                );
            }
        }
        // The streaming store itself is identical to the replayed one.
        prop_assert_eq!(streaming.observations(), &prefix);
    }

    #[test]
    fn wire_round_trip_preserves_observations(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, _) = build_both(paths, snapshots, &cells);
        let back = PathObservations::from_wire(&packed.to_wire()).unwrap();
        prop_assert_eq!(&back, &packed);
        // The round-tripped store answers queries identically.
        let a = ProbabilityEstimator::new(&packed).unwrap();
        let b = ProbabilityEstimator::new(&back).unwrap();
        prop_assert_eq!(a.prob_all_paths_good(), b.prob_all_paths_good());
    }
}
