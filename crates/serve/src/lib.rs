//! # netcorr-serve — the online tomography daemon
//!
//! The offline pipeline infers per-link congestion probabilities from a
//! complete set of end-to-end observations. This crate closes the loop
//! for a live deployment: a long-running daemon that
//!
//! 1. **ingests** observation snapshots as framed v3 wire-format blocks
//!    over a socket (TCP or Unix domain), feeding a
//!    [`netcorr_measure::StreamingEstimator`] at O(1) cost per snapshot;
//! 2. **re-infers** on demand: the right-hand side refreshes in
//!    `O(#equations)` through a
//!    [`netcorr_core::IncrementalEquationBuilder`], and the solve runs
//!    over a cached [`netcorr_core::InferenceContext`] — reusing the
//!    equation structure, the independence selection and the dense QR
//!    factorization (or blocked sparse matrix), with CGLS warm-started
//!    from the previous solution on the sparse plan;
//! 3. **answers** link-state and probability queries over a small
//!    line-oriented request protocol ([`protocol`]), with per-request
//!    `ERR` replies instead of connection drops and an in-band graceful
//!    `SHUTDOWN`;
//! 4. **persists** its observation history (opt-in via `--history`):
//!    every ingest atomically rewrites a v3 history file, and on restart
//!    the file is memory-mapped through
//!    [`netcorr_measure::MappedObservations`] and attached to the
//!    estimator as a zero-copy base segment — the daemon resumes with
//!    bit-identical accumulators without re-ingesting its stream.
//!
//! On the dense solve plans (instances up to the solver's
//! `dense_threshold`) every answer the daemon gives is **bit-identical**
//! to the offline batch inference over the same accumulated
//! observations; the daemon changes latency, not results.
//!
//! The layers are usable separately: [`service::TomographyService`] is
//! the engine (no I/O), [`protocol`] parses/dispatches request lines
//! (shared by the server and the benchmarks), [`server::Server`] is the
//! socket front-end, and [`client::Client`] is a typed client used by
//! the tests, the examples and operators' scripts. The `netcorr-serve`
//! binary wires them together behind a CLI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod faults;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{Client, ClientConfig, ClientError, InferReply, ReconnectingClient};
pub use error::ServeError;
pub use faults::{FaultPlan, FaultProfile, FaultyHistoryWriter, FaultyStream};
pub use protocol::{Reply, Request};
pub use server::{ListenAddr, Server, ServerConfig};
pub use service::{HistoryStatus, ServiceStatus, TomographyService};
