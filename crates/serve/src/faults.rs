//! Seeded, bit-reproducible I/O fault injection for the serving stack.
//!
//! Production failure modes at the daemon's I/O boundary — short reads
//! and writes, peers disconnecting mid-request, slow-loris stalls, and
//! history writes torn at an arbitrary byte by a crash — are rare enough
//! in the wild that untested recovery code is broken recovery code. This
//! module makes every one of them an *injectable, deterministic* event:
//!
//! * a [`FaultPlan`] is a seeded schedule. Every injection decision is a
//!   pure function of `(seed, fault domain, stream id, operation
//!   counter)` through a SplitMix64-style mixer, so the same seed
//!   replays the same faults at the same operations, bit for bit, with
//!   no RNG state shared between streams and no dependence on timing;
//! * [`FaultyStream`] wraps any `Read + Write` transport (the server
//!   wraps accepted sockets, the chaos harness wraps client ends);
//! * [`FaultyHistoryWriter`] sits behind the service's history
//!   persistence and can tear exactly one write at a seeded byte offset
//!   — optionally aborting the whole process at that point to model a
//!   crash mid-write rather than a reported error;
//! * [`FaultPlan::none`] is **bit-invisible**: the wrappers delegate
//!   straight to the inner stream / the atomic writer, injecting
//!   nothing, so production construction goes through the same code
//!   path as chaos runs.
//!
//! Rates are expressed per mille (integer math only — determinism never
//! rides on floating point), and the tear offset for history writes is
//! derived from the seed, so a chaos schedule over many seeds sweeps the
//! torn-byte space.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use netcorr_eval::persist;

use crate::error::ServeError;

/// Fault domains: mixed into the hash so the read schedule, write
/// schedule and tear offsets of one seed are independent streams.
const DOMAIN_READ: u64 = 0x5245_4144; // "READ"
const DOMAIN_WRITE: u64 = 0x5752_4954; // "WRIT"
const DOMAIN_TEAR: u64 = 0x5445_4152; // "TEAR"

/// SplitMix64 finalizer: the statistically strong 64-bit mixer behind
/// the deterministic schedule (same constants as `fastrand` et al.).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-mille rates and parameters for one family of injected faults.
///
/// All-zero rates (see [`FaultProfile::quiet`]) inject nothing; the
/// named profiles are the schedules the chaos harness and CI run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Per-mille chance a stream read is truncated to a prefix of the
    /// caller's buffer (never to zero bytes — that would be EOF).
    pub short_read_per_mille: u32,
    /// Per-mille chance a stream write accepts only a prefix.
    pub short_write_per_mille: u32,
    /// Per-mille chance a stream operation fails with a connection
    /// reset / broken pipe, as if the peer vanished mid-request.
    pub disconnect_per_mille: u32,
    /// Per-mille chance a stream operation stalls for [`Self::stall`]
    /// before proceeding (slow-loris behaviour).
    pub stall_per_mille: u32,
    /// How long an injected stall lasts.
    pub stall: Duration,
    /// 1-based index of the history write to tear (0 = never). The torn
    /// byte offset is derived from the plan seed.
    pub tear_history_write: u64,
    /// When `true`, the torn history write aborts the process (modeling
    /// a crash mid-write); when `false` it surfaces as an I/O error and
    /// the daemon keeps running.
    pub torn_write_aborts: bool,
}

impl FaultProfile {
    /// No faults at all — the profile equivalent of [`FaultPlan::none`].
    pub fn quiet() -> Self {
        FaultProfile {
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            disconnect_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::ZERO,
            tear_history_write: 0,
            torn_write_aborts: false,
        }
    }

    /// Flaky transport: frequent short reads/writes, occasional
    /// disconnects and brief stalls, history writes untouched.
    pub fn flaky_io() -> Self {
        FaultProfile {
            short_read_per_mille: 120,
            short_write_per_mille: 120,
            disconnect_per_mille: 25,
            stall_per_mille: 10,
            stall: Duration::from_millis(20),
            tear_history_write: 0,
            torn_write_aborts: false,
        }
    }

    /// Crash-consistency profile: the transport is clean but one history
    /// write — the `1 + seed-derived index within the first five` — is
    /// torn at a seeded byte offset and the process aborts, modeling a
    /// daemon dying mid-persist.
    pub fn torn_history(seed: u64) -> Self {
        FaultProfile {
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            disconnect_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::ZERO,
            tear_history_write: 1 + splitmix64(seed ^ DOMAIN_TEAR) % 5,
            torn_write_aborts: true,
        }
    }

    /// Parses a profile by its CLI name (`quiet`, `flaky-io`,
    /// `torn-history`).
    pub fn by_name(name: &str, seed: u64) -> Result<Self, ServeError> {
        match name {
            "quiet" => Ok(Self::quiet()),
            "flaky-io" => Ok(Self::flaky_io()),
            "torn-history" => Ok(Self::torn_history(seed)),
            other => Err(ServeError::Protocol(format!(
                "unknown fault profile '{other}' (expected quiet|flaky-io|torn-history)"
            ))),
        }
    }
}

struct PlanInner {
    seed: u64,
    profile: FaultProfile,
}

/// A seeded fault schedule, cheap to clone and share.
///
/// [`FaultPlan::none`] carries no state and makes every wrapper a pure
/// passthrough; [`FaultPlan::seeded`] derives each injection decision
/// deterministically from the seed (see the module docs).
#[derive(Clone)]
pub struct FaultPlan(Option<Arc<PlanInner>>);

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "FaultPlan::none"),
            Some(inner) => f
                .debug_struct("FaultPlan")
                .field("seed", &inner.seed)
                .field("profile", &inner.profile)
                .finish(),
        }
    }
}

impl FaultPlan {
    /// The no-fault plan: wrappers built over it are bit-invisible.
    pub fn none() -> Self {
        FaultPlan(None)
    }

    /// A seeded plan following `profile`.
    pub fn seeded(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan(Some(Arc::new(PlanInner { seed, profile })))
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// The deterministic 64-bit decision word for one operation.
    fn decision(&self, domain: u64, stream_id: u64, counter: u64) -> u64 {
        let inner = self.0.as_ref().expect("decision on FaultPlan::none");
        splitmix64(
            inner
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(splitmix64(domain ^ stream_id.rotate_left(32)))
                .wrapping_add(counter),
        )
    }

    /// Wraps a transport; `stream_id` keys this stream's schedule so
    /// concurrent sessions draw independent, reproducible fault
    /// sequences.
    pub fn wrap<S: Read + Write>(&self, inner: S, stream_id: u64) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan: self.clone(),
            stream_id,
            reads: 0,
            writes: 0,
        }
    }

    /// A history writer following this plan ([`FaultPlan::none`] makes
    /// it exactly the atomic stage-and-rename writer).
    pub fn history_writer(&self) -> FaultyHistoryWriter {
        FaultyHistoryWriter {
            plan: self.clone(),
            writes: 0,
        }
    }
}

/// What one stream operation should do, decided by the plan.
enum StreamFault {
    None,
    Short,
    Disconnect,
    Stall(Duration),
}

fn stream_fault(plan: &FaultPlan, domain: u64, stream_id: u64, counter: u64) -> StreamFault {
    let Some(inner) = plan.0.as_ref() else {
        return StreamFault::None;
    };
    let p = &inner.profile;
    let roll = (plan.decision(domain, stream_id, counter) % 1000) as u32;
    // Ordered bands: [disconnect | stall | short | clean].
    if roll < p.disconnect_per_mille {
        StreamFault::Disconnect
    } else if roll < p.disconnect_per_mille + p.stall_per_mille {
        StreamFault::Stall(p.stall)
    } else if roll
        < p.disconnect_per_mille
            + p.stall_per_mille
            + if domain == DOMAIN_READ {
                p.short_read_per_mille
            } else {
                p.short_write_per_mille
            }
    {
        StreamFault::Short
    } else {
        StreamFault::None
    }
}

/// A `Read + Write` transport with seeded faults layered on top (see
/// the module docs). With [`FaultPlan::none`] every call delegates
/// directly to the inner stream.
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    stream_id: u64,
    reads: u64,
    writes: u64,
}

impl<S> FaultyStream<S> {
    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.is_none() {
            return self.inner.read(buf);
        }
        let counter = self.reads;
        self.reads += 1;
        match stream_fault(&self.plan, DOMAIN_READ, self.stream_id, counter) {
            StreamFault::Disconnect => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected disconnect (read)",
            )),
            StreamFault::Stall(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            StreamFault::Short if buf.len() > 1 => {
                // Truncate to a nonempty prefix: a zero-length read
                // would be indistinguishable from EOF.
                let short = (buf.len() / 4).max(1);
                self.inner.read(&mut buf[..short])
            }
            StreamFault::Short | StreamFault::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.is_none() {
            return self.inner.write(buf);
        }
        let counter = self.writes;
        self.writes += 1;
        match stream_fault(&self.plan, DOMAIN_WRITE, self.stream_id, counter) {
            StreamFault::Disconnect => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected disconnect (write)",
            )),
            StreamFault::Stall(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            StreamFault::Short if buf.len() > 1 => {
                let short = (buf.len() / 3).max(1);
                self.inner.write(&buf[..short])
            }
            StreamFault::Short | StreamFault::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The persistence-side fault hook: writes history files atomically
/// (stage + rename) like production, except for the one seeded write the
/// plan tears — that write lands as a *non-atomic truncated prefix at
/// the target path*, modeling a crash mid-write, and either aborts the
/// process or surfaces an I/O error depending on the profile.
pub struct FaultyHistoryWriter {
    plan: FaultPlan,
    writes: u64,
}

impl FaultyHistoryWriter {
    /// Writes `bytes` at `path`; the `writes` counter makes the tear
    /// schedule positional, not content-dependent.
    pub fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.writes += 1;
        if let Some(inner) = self.plan.0.as_ref() {
            let p = &inner.profile;
            if p.tear_history_write != 0 && self.writes == p.tear_history_write {
                // Strictly torn: at < len, so the file is never complete
                // and recovery always lands on the previous generation.
                let at =
                    (self.plan.decision(DOMAIN_TEAR, 0, self.writes) as usize) % bytes.len().max(1);
                std::fs::write(path, &bytes[..at])?;
                if p.torn_write_aborts {
                    eprintln!(
                        "netcorr-serve: injected crash — history write {} torn at byte {at}/{}",
                        self.writes,
                        bytes.len()
                    );
                    std::process::abort();
                }
                return Err(io::Error::other(format!(
                    "injected torn history write at byte {at}/{}",
                    bytes.len()
                )));
            }
        }
        persist::atomic_write(path, bytes).map_err(|e| io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory transport: reads drain a scripted buffer, writes
    /// append to a sink.
    struct Loopback {
        input: Vec<u8>,
        cursor: usize,
        output: Vec<u8>,
    }

    impl Loopback {
        fn new(input: &[u8]) -> Self {
            Loopback {
                input: input.to_vec(),
                cursor: 0,
                output: Vec::new(),
            }
        }
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.input.len() - self.cursor);
            buf[..n].copy_from_slice(&self.input[self.cursor..self.cursor + n]);
            self.cursor += n;
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn none_plan_is_bit_invisible() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut faulty = FaultPlan::none().wrap(Loopback::new(&payload), 7);
        let mut read_back = Vec::new();
        faulty.read_to_end(&mut read_back).unwrap();
        assert_eq!(read_back, payload);
        faulty.inner.output.clear();
        faulty.write_all(&payload).unwrap();
        assert_eq!(faulty.inner.output, payload);
    }

    #[test]
    fn seeded_plans_replay_identical_fault_schedules() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let run = |seed: u64, stream: u64| {
            let plan = FaultPlan::seeded(seed, FaultProfile::flaky_io());
            let mut faulty = plan.wrap(Loopback::new(&payload), stream);
            let mut log = Vec::new();
            let mut buf = [0u8; 64];
            for _ in 0..200 {
                match faulty.read(&mut buf) {
                    Ok(n) => log.push(format!("ok:{n}")),
                    Err(e) => log.push(format!("err:{}", e.kind() as u8)),
                }
            }
            log
        };
        assert_eq!(run(42, 1), run(42, 1));
        assert_ne!(run(42, 1), run(43, 1), "seed must matter");
        assert_ne!(run(42, 1), run(42, 2), "stream id must matter");
    }

    #[test]
    fn flaky_profile_actually_injects_each_family() {
        let payload = vec![0xAAu8; 1 << 16];
        let plan = FaultPlan::seeded(1, FaultProfile::flaky_io());
        let mut faulty = plan.wrap(Loopback::new(&payload), 0);
        let mut saw_short = false;
        let mut saw_disconnect = false;
        let mut buf = [0u8; 64];
        for _ in 0..500 {
            match faulty.read(&mut buf) {
                Ok(0) => break,
                Ok(n) if n < buf.len() => saw_short = true,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => saw_disconnect = true,
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert!(saw_short, "short reads never injected");
        assert!(saw_disconnect, "disconnects never injected");
    }

    #[test]
    fn history_writer_tears_exactly_the_scheduled_write() {
        let dir = std::env::temp_dir().join(format!("netcorr_faults_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.bin");
        let bytes = vec![0x5Au8; 1000];

        let mut profile = FaultProfile::torn_history(9);
        profile.torn_write_aborts = false; // report, don't crash the test
        profile.tear_history_write = 2;
        let plan = FaultPlan::seeded(9, profile);
        let mut writer = plan.history_writer();

        writer.write(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 1000);
        let err = writer.write(&path, &bytes).unwrap_err();
        assert!(err.to_string().contains("torn history write"), "{err}");
        let torn_len = std::fs::read(&path).unwrap().len();
        assert!(torn_len < 1000, "write was not torn: {torn_len}");
        writer.write(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 1000);

        // The torn offset is a pure function of the seed.
        let mut profile2 = FaultProfile::torn_history(9);
        profile2.torn_write_aborts = false;
        profile2.tear_history_write = 1;
        let mut w2 = FaultPlan::seeded(9, profile2.clone()).history_writer();
        let p2 = dir.join("h2.bin");
        w2.write(&p2, &bytes).unwrap_err();
        let mut w3 = FaultPlan::seeded(9, profile2).history_writer();
        let p3 = dir.join("h3.bin");
        w3.write(&p3, &bytes).unwrap_err();
        assert_eq!(std::fs::read(&p2).unwrap(), std::fs::read(&p3).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quiet_history_writer_is_the_atomic_writer() {
        let dir = std::env::temp_dir().join(format!("netcorr_faults_q_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.bin");
        let mut writer = FaultPlan::none().history_writer();
        writer.write(&path, b"generation-1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        writer.write(&path, b"generation-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
