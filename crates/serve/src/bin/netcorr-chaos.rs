//! netcorr-chaos — seeded fault-injection harness for `netcorr-serve`.
//!
//! Spawns real daemon processes (the `netcorr-serve` binary next to this
//! one), attacks them with seeded, bit-reproducible fault schedules, and
//! asserts the fault-tolerance contract:
//!
//! * **disconnect-storm** — a daemon running the `flaky-io` profile
//!   (short reads/writes, mid-request disconnects, brief stalls on every
//!   session stream) stays up through a storm of ingests and queries,
//!   and its final answers are bit-identical to an in-process comparator
//!   fed exactly the blocks the daemon counted;
//! * **torn-history** — a daemon running the `torn-history` profile
//!   crashes (aborts) mid-history-write at a seeded ingest and byte
//!   offset; a clean restart over the torn file must recover to exactly
//!   the acked ingest prefix and answer bit-identically to a comparator
//!   that replayed only the acked blocks. Rounds alternate between the
//!   tcp and unix transports;
//! * **slow-loris** — stalled request lines are answered with `ERR
//!   timeout` and bounded by `--request-timeout-ms`, connections over
//!   `--max-sessions` are shed with `ERR busy`, and after all of it the
//!   daemon still serves and exits cleanly on `SHUTDOWN` — no hung
//!   session can leak past the bounded exit wait.
//!
//! Everything is derived from `--seed`: the fault schedules (passed to
//! the daemon as `--fault-seed`), the observation blocks, and the tear
//! points. The same seed replays the same run bit-for-bit.
//!
//! Exit status 0 means every scenario held; any violated assertion
//! prints a diagnostic and exits 1.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use netcorr_core::AlgorithmConfig;
use netcorr_measure::PathObservations;
use netcorr_serve::{Client, ClientConfig, ReconnectingClient, TomographyService};
use netcorr_topology::toy;

fn usage() -> &'static str {
    "usage: netcorr-chaos [--seed N] [--rounds N] [--scenario NAME] [--serve-bin PATH]\n\
     \n\
     NAME   all | disconnect-storm | torn-history | slow-loris (default: all)\n\
     N      --seed keys every fault schedule and observation block (default: 1);\n\
     \x20       --rounds scales the torn-history crash/restart loop (default: 3)\n\
     PATH   the netcorr-serve binary to attack (default: the sibling of this binary)"
}

/// SplitMix64 — the same finalizer the fault plans use, so harness-side
/// randomness is seeded and reproducible too.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic observation block over Figure 1(a)'s three paths.
fn chaos_block(seed: u64, tag: u64, snapshots: usize) -> PathObservations {
    let mut block = PathObservations::new(3);
    for s in 0..snapshots {
        let word = splitmix64(seed ^ tag.wrapping_mul(0x9e37_79b9).wrapping_add(s as u64));
        block
            .record_snapshot(&[word & 1 == 1, word & 2 == 2, word & 4 == 4])
            .expect("3-path snapshot");
    }
    block
}

/// Timeout-bounded client defaults for talking to a faulty daemon.
fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(80),
    }
}

/// A spawned daemon process plus the address it reported.
struct Daemon {
    child: Child,
    /// `tcp://host:port` or `unix://path`, as printed by the daemon.
    listen: String,
}

impl Daemon {
    fn spawn(bin: &Path, args: &[String]) -> Result<Daemon, String> {
        let mut child = Command::new(bin)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut reader = BufReader::new(stdout);
        let deadline = Instant::now() + Duration::from_secs(20);
        let listen = loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                let _ = child.kill();
                return Err("daemon exited before reporting its address".into());
            }
            if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
                break rest.to_string();
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err("daemon never reported its address".into());
            }
        };
        // Drain the rest of the pipe so the daemon can never block on a
        // full stdout buffer.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).unwrap_or(0) > 0 {
                sink.clear();
            }
        });
        Ok(Daemon { child, listen })
    }

    fn tcp_addr(&self) -> Result<String, String> {
        self.listen
            .strip_prefix("tcp://")
            .map(str::to_string)
            .ok_or_else(|| format!("expected a tcp address, daemon reported {}", self.listen))
    }

    fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Waits for the daemon to exit; failing this bound means a hung
    /// session (or accept loop) leaked past shutdown.
    fn wait_exit(&mut self, timeout: Duration) -> Result<std::process::ExitStatus, String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Ok(status),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Ok(None) => {
                    let _ = self.child.kill();
                    return Err(format!(
                        "daemon did not exit within {timeout:?} — a hung session leaked"
                    ));
                }
                Err(e) => return Err(format!("cannot wait for the daemon: {e}")),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.is_alive() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Retries a fallible client operation until it succeeds or the attempt
/// budget runs out; injected faults make individual exchanges unreliable
/// but never permanently so.
fn eventually<T, E: std::fmt::Debug>(
    what: &str,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, String> {
    let mut last = None;
    for _ in 0..60 {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(format!("{what} kept failing: {last:?}"))
}

/// Bit-exact comparison between the daemon's probabilities and the
/// comparator's.
fn assert_bit_identical(got: &[f64], want: &[f64], context: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{context}: {} probabilities served, {} expected",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(format!(
                "{context}: link {i} diverged: served {g:?} ({:#x}), expected {w:?} ({:#x})",
                g.to_bits(),
                w.to_bits()
            ));
        }
    }
    Ok(())
}

/// Scenario 1: the daemon survives a storm of seeded transport faults
/// and its answers stay bit-identical to a comparator fed exactly the
/// blocks the daemon counted.
fn disconnect_storm(bin: &Path, seed: u64, rounds: u64) -> Result<(), String> {
    let mut daemon = Daemon::spawn(
        bin,
        &[
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--fault-profile".into(),
            "flaky-io".into(),
            "--fault-seed".into(),
            seed.to_string(),
            "--request-timeout-ms".into(),
            "3000".into(),
            "--drain-timeout-ms".into(),
            "1000".into(),
        ],
    )?;
    let addr = daemon.tcp_addr()?;
    let mut comparator = TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default())
        .map_err(|e| format!("comparator: {e}"))?;
    let mut client = ReconnectingClient::tcp(&addr, client_config());
    let mut counted = 0usize;
    for round in 0..rounds * 6 {
        let block = chaos_block(seed, round, 6 + (splitmix64(seed ^ round) % 10) as usize);
        // The ingest itself is single-shot: a lost ack leaves the
        // outcome unknown, so the daemon's own snapshot counter is the
        // ground truth for what landed.
        let _ = client.ingest(&block);
        let snapshots = eventually("STATUS after ingest", || client.status())?.num_snapshots;
        match snapshots - counted {
            0 => {}
            n if n == block.num_snapshots() => {
                comparator
                    .ingest_observations(&block)
                    .map_err(|e| format!("comparator ingest: {e}"))?;
            }
            n => {
                return Err(format!(
                    "partial ingest: daemon counted {n} of the block's {} snapshots — \
                     OBS must be atomic",
                    block.num_snapshots()
                ))
            }
        }
        counted = snapshots;
        if !daemon.is_alive() {
            return Err(format!(
                "daemon died during the disconnect storm (round {round})"
            ));
        }
    }
    if counted == 0 {
        return Err("the storm acked no blocks at all — the schedule is too hostile".into());
    }
    comparator
        .reinfer()
        .map_err(|e| format!("comparator: {e}"))?;
    let infer = eventually("INFER through the storm", || client.infer())?;
    if infer.stale {
        return Err("a dense-plan INFER came back stale with no solver trouble".into());
    }
    let (stale, probs) = eventually("PROBS through the storm", || client.probabilities_flagged())?;
    if stale {
        return Err("PROBS flagged stale after a successful INFER".into());
    }
    assert_bit_identical(
        &probs,
        comparator
            .probabilities()
            .map_err(|e| format!("comparator: {e}"))?,
        "disconnect-storm",
    )?;
    // SHUTDOWN's reply may itself be eaten by an injected disconnect,
    // but the flag is set before the reply — the daemon exits either
    // way.
    let _ = eventually("SHUTDOWN through the storm", || {
        Client::connect_tcp_with(&addr, &client_config())
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
    });
    let status = daemon.wait_exit(Duration::from_secs(10))?;
    if !status.success() {
        return Err(format!("daemon exited uncleanly after the storm: {status}"));
    }
    println!(
        "netcorr-chaos: disconnect-storm ok ({counted} snapshots acked, answers bit-identical)"
    );
    Ok(())
}

/// One crash/restart round of the torn-history scenario, generic over
/// the client transport.
fn torn_round<S: Read + Write>(
    client: &mut Client<S>,
    comparator: &mut TomographyService,
    seed: u64,
    round: u64,
) -> Result<usize, String> {
    let mut acked = 0;
    for i in 0..10u64 {
        let block = chaos_block(seed, round * 1000 + i, 5 + (i as usize % 4));
        match client.ingest(&block) {
            Ok(_) => {
                acked += 1;
                comparator
                    .ingest_observations(&block)
                    .map_err(|e| format!("comparator ingest: {e}"))?;
            }
            Err(_) => return Ok(acked), // The daemon aborted mid-write.
        }
    }
    Err("the daemon never crashed, but torn-history tears within the first 5 writes".into())
}

/// Post-restart verification, generic over the client transport: the
/// recovered daemon must hold exactly the acked snapshots and answer
/// bit-identically to the comparator.
fn verify_recovered<S: Read + Write>(
    client: &mut Client<S>,
    comparator: &mut TomographyService,
    expect_recovered: bool,
    context: &str,
) -> Result<(), String> {
    let status = client.status().map_err(|e| format!("{context}: {e}"))?;
    let history = status
        .history
        .ok_or_else(|| format!("{context}: STATUS reports no history"))?;
    if history.recovered != expect_recovered {
        return Err(format!(
            "{context}: STATUS history_recovered={} but {expect_recovered} was expected",
            history.recovered
        ));
    }
    if status.num_snapshots != comparator.num_snapshots() {
        return Err(format!(
            "{context}: recovered {} snapshots, acked prefix holds {} — recovery must be exact",
            status.num_snapshots,
            comparator.num_snapshots()
        ));
    }
    if comparator.num_snapshots() == 0 {
        return Ok(());
    }
    client
        .infer()
        .map_err(|e| format!("{context}: INFER: {e}"))?;
    comparator
        .reinfer()
        .map_err(|e| format!("{context}: comparator: {e}"))?;
    let probs = client
        .probabilities()
        .map_err(|e| format!("{context}: PROBS: {e}"))?;
    assert_bit_identical(
        &probs,
        comparator
            .probabilities()
            .map_err(|e| format!("{context}: comparator: {e}"))?,
        context,
    )
}

/// Scenario 2: torn-write-then-restart loops, alternating tcp and unix
/// transports. Each round crashes a faulty daemon mid-history-write,
/// then proves a clean restart recovers to exactly the acked prefix.
fn torn_history(bin: &Path, dir: &Path, seed: u64, rounds: u64) -> Result<(), String> {
    let history = dir.join("history.ncobs3");
    let mut comparator = TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default())
        .map_err(|e| format!("comparator: {e}"))?;
    for round in 0..rounds {
        let use_unix = cfg!(unix) && round % 2 == 1;
        let sock = dir.join(format!("chaos-{round}.sock"));
        let listen = if use_unix {
            format!("unix:{}", sock.display())
        } else {
            "127.0.0.1:0".into()
        };
        // Phase 1: a faulty daemon that will abort mid-history-write.
        let mut faulty = Daemon::spawn(
            bin,
            &[
                "--listen".into(),
                listen.clone(),
                "--history".into(),
                history.display().to_string(),
                "--fault-profile".into(),
                "torn-history".into(),
                "--fault-seed".into(),
                (seed ^ round.wrapping_mul(0x1234_5678_9abc)).to_string(),
            ],
        )?;
        let config = client_config();
        let acked = if use_unix {
            let mut client = Client::connect_unix_with(&sock, &config)
                .map_err(|e| format!("unix connect: {e}"))?;
            torn_round(&mut client, &mut comparator, seed, round)?
        } else {
            let addr = faulty.tcp_addr()?;
            let mut client = Client::connect_tcp_with(&addr, &config)
                .map_err(|e| format!("tcp connect: {e}"))?;
            torn_round(&mut client, &mut comparator, seed, round)?
        };
        let status = faulty.wait_exit(Duration::from_secs(10))?;
        if status.success() {
            return Err("the faulty daemon exited cleanly — the torn write must abort".into());
        }
        // Phase 2: a clean daemon over the torn file must recover to
        // the acked prefix and serve bit-identically.
        let mut clean = Daemon::spawn(
            bin,
            &[
                "--listen".into(),
                listen,
                "--history".into(),
                history.display().to_string(),
            ],
        )?;
        // Only a round whose ingests all landed before the tear (tear
        // on the never-sent next generation cannot happen: the tear is
        // within the first 5 writes and we attempt 10) leaves a clean
        // file; every crash here tears the current file mid-write.
        if use_unix {
            let mut client = Client::connect_unix_with(&sock, &config)
                .map_err(|e| format!("unix reconnect: {e}"))?;
            verify_recovered(&mut client, &mut comparator, true, "torn-history(unix)")?;
            client
                .shutdown()
                .map_err(|e| format!("clean shutdown: {e}"))?;
        } else {
            let addr = clean.tcp_addr()?;
            let mut client = Client::connect_tcp_with(&addr, &config)
                .map_err(|e| format!("tcp reconnect: {e}"))?;
            verify_recovered(&mut client, &mut comparator, true, "torn-history(tcp)")?;
            client
                .shutdown()
                .map_err(|e| format!("clean shutdown: {e}"))?;
        }
        let status = clean.wait_exit(Duration::from_secs(10))?;
        if !status.success() {
            return Err(format!("recovered daemon exited uncleanly: {status}"));
        }
        println!(
            "netcorr-chaos: torn-history round {round} ok ({} transport, {acked} acked ingests, \
             recovery exact)",
            if use_unix { "unix" } else { "tcp" }
        );
    }
    Ok(())
}

/// Scenario 3: stalled clients are bounded, excess connections are shed,
/// and neither leaves a hung session behind.
fn slow_loris(bin: &Path, seed: u64) -> Result<(), String> {
    let mut daemon = Daemon::spawn(
        bin,
        &[
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--request-timeout-ms".into(),
            "300".into(),
            "--idle-timeout-ms".into(),
            "30000".into(),
            "--drain-timeout-ms".into(),
            "500".into(),
            "--max-sessions".into(),
            "3".into(),
        ],
    )?;
    let addr = daemon.tcp_addr()?;

    // A stalled request line gets an ERR timeout, bounded by the request
    // deadline, then the session is closed.
    let mut stalled = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    stalled.write_all(b"STA").map_err(|e| e.to_string())?;
    stalled.flush().map_err(|e| e.to_string())?;
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    let started = Instant::now();
    BufReader::new(&stalled)
        .read_line(&mut reply)
        .map_err(|e| format!("stalled session read: {e}"))?;
    if !reply.starts_with("ERR timeout") {
        return Err(format!(
            "stalled request got {reply:?}, expected ERR timeout"
        ));
    }
    if started.elapsed() > Duration::from_secs(3) {
        return Err("the request deadline took too long to fire".into());
    }
    drop(stalled);

    // Fill the session cap with idle connections; the next one is shed
    // with a single ERR busy line.
    let idle: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(&addr))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    std::thread::sleep(Duration::from_millis(200)); // let the accept loop seat them
    let over = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    over.set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(&over)
        .read_line(&mut reply)
        .map_err(|e| format!("shed session read: {e}"))?;
    if !reply.starts_with("ERR busy") {
        return Err(format!(
            "over-cap connection got {reply:?}, expected ERR busy"
        ));
    }
    drop(over);
    drop(idle);

    // The daemon still serves normally and exits cleanly — no leaked
    // session may hold it up.
    let mut client = eventually("post-loris connect", || {
        Client::connect_tcp_with(&addr, &client_config())
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.ping().map(|()| c).map_err(|e| e.to_string()))
    })?;
    client
        .ingest(&chaos_block(seed, 0x1015, 24))
        .map_err(|e| format!("post-loris ingest: {e}"))?;
    client
        .infer()
        .map_err(|e| format!("post-loris infer: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let status = daemon.wait_exit(Duration::from_secs(10))?;
    if !status.success() {
        return Err(format!(
            "daemon exited uncleanly after slow-loris: {status}"
        ));
    }
    println!("netcorr-chaos: slow-loris ok (timeout bounded, busy shed, clean exit)");
    Ok(())
}

struct Options {
    seed: u64,
    rounds: u64,
    scenario: String,
    serve_bin: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Option<Options>, String> {
    let mut options = Options {
        seed: 1,
        rounds: 3,
        scenario: "all".into(),
        serve_bin: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match arg.as_str() {
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--rounds" => {
                options.rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| "invalid --rounds".to_string())?
            }
            "--scenario" => options.scenario = value("--scenario")?,
            "--serve-bin" => options.serve_bin = Some(PathBuf::from(value("--serve-bin")?)),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(Some(options))
}

/// The `netcorr-serve` binary: `--serve-bin`, or the sibling of this
/// executable.
fn locate_serve_bin(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(path) = explicit {
        return Ok(path);
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me
        .parent()
        .ok_or_else(|| "current_exe has no parent directory".to_string())?
        .join("netcorr-serve");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "netcorr-serve not found at {} — build it first or pass --serve-bin",
            sibling.display()
        ))
    }
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{}", usage());
            return;
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let bin = match locate_serve_bin(options.serve_bin.clone()) {
        Ok(bin) => bin,
        Err(message) => {
            eprintln!("netcorr-chaos: {message}");
            std::process::exit(2);
        }
    };
    let dir = std::env::temp_dir().join(format!(
        "netcorr-chaos-{}-{}",
        options.seed,
        std::process::id()
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("netcorr-chaos: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    println!(
        "netcorr-chaos: seed {} rounds {} scenario {} against {}",
        options.seed,
        options.rounds,
        options.scenario,
        bin.display()
    );
    let result = match options.scenario.as_str() {
        "all" => disconnect_storm(&bin, options.seed, options.rounds)
            .and_then(|()| torn_history(&bin, &dir, options.seed, options.rounds))
            .and_then(|()| slow_loris(&bin, options.seed)),
        "disconnect-storm" => disconnect_storm(&bin, options.seed, options.rounds),
        "torn-history" => torn_history(&bin, &dir, options.seed, options.rounds),
        "slow-loris" => slow_loris(&bin, options.seed),
        other => {
            eprintln!("netcorr-chaos: unknown scenario '{other}'\n{}", usage());
            std::process::exit(2);
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => println!("netcorr-chaos: all assertions held (seed {})", options.seed),
        Err(message) => {
            eprintln!("netcorr-chaos: FAILED: {message}");
            std::process::exit(1);
        }
    }
}
