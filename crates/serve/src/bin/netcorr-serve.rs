//! The online tomography daemon binary.
//!
//! Builds a topology (one of the named deterministic fixtures), wraps it
//! in a [`TomographyService`] and serves the line-oriented protocol on a
//! TCP or Unix socket until an in-band `SHUTDOWN` request arrives.
//!
//! ```text
//! netcorr-serve --listen 127.0.0.1:7870 --topology planetlab-smoke
//! netcorr-serve --listen unix:/run/netcorr.sock --topology fig1a
//! ```

use std::time::Duration;

use netcorr_core::AlgorithmConfig;
use netcorr_eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr_serve::{FaultPlan, FaultProfile, ListenAddr, Server, ServerConfig, TomographyService};
use netcorr_topology::{toy, TopologyInstance};

fn usage() -> &'static str {
    "usage: netcorr-serve [--listen ADDR] [--topology NAME] [--topology-seed N] \
     [--history PATH] [--independence] [--dense-threshold N] [--cgls-iterations N] \
     [--cgls-tolerance X] [--max-sessions N] [--idle-timeout-ms N] \
     [--request-timeout-ms N] [--drain-timeout-ms N] [--fault-profile NAME] [--fault-seed N]\n\
     \n\
     ADDR   host:port for TCP (port 0 binds an ephemeral port, reported on stdout),\n\
     \x20       or unix:<path> for a Unix domain socket (default: 127.0.0.1:0)\n\
     NAME   fig1a | planetlab-smoke | brite-smoke (default: fig1a); the smoke\n\
     \x20       fixtures are regenerated deterministically from --topology-seed,\n\
     \x20       so clients can reconstruct the identical instance\n\
     PATH   persistent observation history: every ingest durably writes the next\n\
     \x20       checksummed generation (rotating the previous one to <PATH>.prev)\n\
     \x20       before it is acked; on restart a clean or torn file recovers to the\n\
     \x20       last acked generation, memory-mapped (zero-copy) and attached to the\n\
     \x20       estimator, so the daemon resumes bit-identically\n\
     \n\
     hardening: --max-sessions caps concurrent sessions (excess connections get one\n\
     \x20       `ERR busy` line), --idle-timeout-ms / --request-timeout-ms bound idle\n\
     \x20       sessions and stalled (slow-loris) requests, --drain-timeout-ms bounds\n\
     \x20       how long in-flight requests may finish after SHUTDOWN\n\
     chaos:  --fault-profile quiet|flaky-io|torn-history with --fault-seed N injects\n\
     \x20       seeded, bit-reproducible I/O faults (short reads/writes, disconnects,\n\
     \x20       stalls, torn history writes) for the netcorr-chaos harness"
}

struct Options {
    listen: ListenAddr,
    topology: String,
    topology_seed: u64,
    history: Option<std::path::PathBuf>,
    config: AlgorithmConfig,
    server: ServerConfig,
    fault_profile: Option<String>,
    fault_seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: ListenAddr::Tcp("127.0.0.1:0".into()),
            topology: "fig1a".into(),
            topology_seed: 42,
            history: None,
            config: AlgorithmConfig::default(),
            server: ServerConfig::default(),
            fault_profile: None,
            fault_seed: 0,
        }
    }
}

enum Parsed {
    Run(Box<Options>),
    Help,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Parsed, String> {
    let mut options = Options::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => options.listen = ListenAddr::parse(&value(&mut args, "--listen")?),
            "--topology" => options.topology = value(&mut args, "--topology")?,
            "--topology-seed" => {
                options.topology_seed = parse(&value(&mut args, "--topology-seed")?)?
            }
            "--history" => {
                options.history = Some(std::path::PathBuf::from(value(&mut args, "--history")?))
            }
            "--independence" => options.config.equations.respect_correlation = false,
            "--dense-threshold" => {
                options.config.solver.dense_threshold =
                    parse(&value(&mut args, "--dense-threshold")?)?
            }
            "--cgls-iterations" => {
                options.config.solver.cgls_iterations =
                    parse(&value(&mut args, "--cgls-iterations")?)?
            }
            "--cgls-tolerance" => {
                options.config.solver.cgls_tolerance =
                    parse(&value(&mut args, "--cgls-tolerance")?)?
            }
            "--max-sessions" => {
                options.server.max_sessions = parse(&value(&mut args, "--max-sessions")?)?
            }
            "--idle-timeout-ms" => {
                options.server.idle_timeout =
                    Duration::from_millis(parse(&value(&mut args, "--idle-timeout-ms")?)?)
            }
            "--request-timeout-ms" => {
                options.server.request_timeout =
                    Duration::from_millis(parse(&value(&mut args, "--request-timeout-ms")?)?)
            }
            "--drain-timeout-ms" => {
                options.server.drain_timeout =
                    Duration::from_millis(parse(&value(&mut args, "--drain-timeout-ms")?)?)
            }
            "--fault-profile" => options.fault_profile = Some(value(&mut args, "--fault-profile")?),
            "--fault-seed" => options.fault_seed = parse(&value(&mut args, "--fault-seed")?)?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(Parsed::Run(Box::new(options)))
}

fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("missing value for {flag}"))
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}'"))
}

/// Builds one of the named deterministic topology fixtures. The smoke
/// fixtures regenerate from `(name, seed)` alone, so an operator (or an
/// end-to-end test) can reconstruct the exact instance the daemon runs.
fn build_topology(name: &str, seed: u64) -> Result<TopologyInstance, String> {
    match name {
        "fig1a" => Ok(toy::figure_1a()),
        "planetlab-smoke" => {
            base_instance(TopologyFamily::PlanetLab, Scale::Smoke, seed).map_err(|e| e.to_string())
        }
        "brite-smoke" => {
            base_instance(TopologyFamily::Brite, Scale::Smoke, seed).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown topology '{other}' (expected fig1a, planetlab-smoke or brite-smoke)"
        )),
    }
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(options)) => options,
        Ok(Parsed::Help) => {
            println!("{}", usage());
            return;
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let instance = match build_topology(&options.topology, options.topology_seed) {
        Ok(instance) => instance,
        Err(message) => {
            eprintln!("netcorr-serve: {message}");
            std::process::exit(2);
        }
    };
    let fault_plan = match &options.fault_profile {
        Some(name) => match FaultProfile::by_name(name, options.fault_seed) {
            Ok(profile) => FaultPlan::seeded(options.fault_seed, profile),
            Err(error) => {
                eprintln!("netcorr-serve: {error}");
                std::process::exit(2);
            }
        },
        None => FaultPlan::none(),
    };
    let mut service = match TomographyService::new(&instance, &options.config) {
        Ok(service) => service,
        Err(error) => {
            eprintln!("netcorr-serve: failed to build the service: {error}");
            std::process::exit(1);
        }
    };
    if !fault_plan.is_none() {
        service.set_fault_plan(&fault_plan);
        println!(
            "netcorr-serve: fault injection {:?} (seed {})",
            fault_plan, options.fault_seed
        );
    }
    if let Some(path) = &options.history {
        match service.enable_history(path) {
            Ok(reloaded) => {
                let status = service.status();
                let (backing, generation, recovered) =
                    status.history.as_ref().map_or(("heap", 0, false), |h| {
                        (h.backing.as_str(), h.generation, h.recovered)
                    });
                println!(
                    "netcorr-serve: history {} ({reloaded} snapshots reloaded, {backing} backed, \
                     generation {generation}{})",
                    path.display(),
                    if recovered { ", recovered" } else { "" }
                );
            }
            Err(error) => {
                eprintln!(
                    "netcorr-serve: failed to reload history {}: {error}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
    println!(
        "netcorr-serve: topology {} ({} paths, {} links, {:?} solver)",
        options.topology,
        service.num_paths(),
        service.num_links(),
        service.status().solver
    );
    let mut server_config = options.server.clone();
    server_config.faults = fault_plan;
    let server = match Server::bind_with(service, &options.listen, server_config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("netcorr-serve: failed to bind {}: {error}", options.listen);
            std::process::exit(1);
        }
    };
    // The e2e tests (and operator scripts) parse this line for the
    // ephemeral port; keep the format stable.
    println!("netcorr-serve: listening on {}", server.local_description());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Err(error) = server.run() {
        eprintln!("netcorr-serve: server failed: {error}");
        std::process::exit(1);
    }
}
