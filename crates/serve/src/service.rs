//! The daemon's inference engine: streaming ingest + warm re-inference.
//!
//! [`TomographyService`] owns everything a long-running deployment needs
//! to keep a live congestion estimate over a fixed topology:
//!
//! * a [`StreamingEstimator`] fed one snapshot at a time (O(1) counter
//!   updates per snapshot, no history rescans);
//! * an [`IncrementalEquationBuilder`] whose equation structure was built
//!   once and whose right-hand side refreshes in `O(#equations)`;
//! * a cached [`InferenceContext`] (equation structure + independence
//!   selection + dense QR factorization or blocked sparse matrix), so a
//!   re-inference costs one RHS refresh plus one back-substitution
//!   (dense) or one warm-started CGLS run (sparse);
//! * the previous solution, used to seed the next CGLS run — on live
//!   streams consecutive refreshes are close, so the warm start converges
//!   in a fraction of a cold run's iterations.
//!
//! On the dense plans (the default for instances up to
//! `SolverConfig::dense_threshold` links) the warm seed is ignored and
//! every [`TomographyService::reinfer`] is **bit-identical** to the
//! offline [`InferenceContext::infer`] over the same accumulated
//! observations; the daemon is then a pure latency optimisation, not a
//! different estimator.
//!
//! With [`TomographyService::enable_history`] the service additionally
//! persists its observation stream: after every successful ingest the
//! full history is atomically rewritten to a v3 file, and on startup an
//! existing file is memory-mapped (zero-copy, see
//! [`netcorr_measure::MappedObservations`]) and attached to the
//! streaming estimator as its base segment — a restarted daemon resumes
//! with bit-identical accumulators without re-ingesting its stream.

use std::path::{Path, PathBuf};

use netcorr_core::context::InferenceContext;
use netcorr_core::equations::IncrementalEquationBuilder;
use netcorr_core::result::{SolverKind, TomographyEstimate};
use netcorr_core::AlgorithmConfig;
use netcorr_eval::persist;
use netcorr_measure::bitset::simd;
use netcorr_measure::{PathObservations, StreamingEstimator};
use netcorr_topology::TopologyInstance;

use crate::error::ServeError;

/// The persisted-observation-history portion of a [`ServiceStatus`]:
/// present only when the service was started with a history file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryStatus {
    /// The history file's path.
    pub path: String,
    /// How the reloaded history is served: `"mmap"` when the startup
    /// reload mapped the file through the zero-copy tier, `"heap"` when
    /// it fell back to a copying read (or the file did not exist yet).
    pub backing: String,
    /// Snapshots covered by the persisted file.
    pub snapshots: usize,
    /// Size of the persisted file in bytes.
    pub bytes: usize,
}

/// A point-in-time summary of the service, the payload of the protocol's
/// `STATUS` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStatus {
    /// Number of measurement paths in the topology.
    pub num_paths: usize,
    /// Number of links (unknowns).
    pub num_links: usize,
    /// Snapshots ingested so far.
    pub num_snapshots: usize,
    /// Equations in the shared structure.
    pub num_equations: usize,
    /// Re-inferences performed so far (cache hits excluded).
    pub reinfers: u64,
    /// Which numerical path solves this topology's systems.
    pub solver: SolverKind,
    /// Whether an estimate is available for queries.
    pub inferred: bool,
    /// The active SIMD kernel tier (`avx512`, `avx2` or `portable`).
    pub kernel: String,
    /// Observation-history persistence, when enabled.
    pub history: Option<HistoryStatus>,
}

/// The service's live record of its history file.
struct HistoryFile {
    path: PathBuf,
    /// `"mmap"` or `"heap"` — how the startup reload is served.
    backing: &'static str,
    /// Bytes in the file as of the last persist (or the startup reload).
    bytes: usize,
    /// Snapshots in the file as of the last persist.
    snapshots: usize,
}

/// The online tomography engine: ingest snapshots, re-infer on demand,
/// answer probability queries from the latest estimate.
pub struct TomographyService {
    context: InferenceContext,
    builder: IncrementalEquationBuilder,
    estimator: StreamingEstimator,
    /// The solved log-good-probabilities of the previous re-inference,
    /// seeding the next CGLS run on the sparse plan.
    last_solution: Option<Vec<f64>>,
    /// The latest estimate; queries are answered from here, so they are
    /// O(1) and never trigger a solve.
    estimate: Option<TomographyEstimate>,
    /// Snapshot count at which `estimate` was computed; a re-inference
    /// with no new data returns the cached estimate.
    inferred_at: Option<usize>,
    reinfers: u64,
    num_paths: usize,
    /// Set by [`TomographyService::enable_history`]: the on-disk history
    /// file rewritten (atomically) after every successful ingest.
    history: Option<HistoryFile>,
}

impl TomographyService {
    /// Builds the service for a topology instance: inference context
    /// (structure, selection, factorization), incremental equation
    /// builder and an empty streaming estimator. All per-topology work
    /// happens here; nothing later in the service's life rebuilds it.
    pub fn new(instance: &TopologyInstance, config: &AlgorithmConfig) -> Result<Self, ServeError> {
        let context = InferenceContext::new(instance, config)?;
        let mut estimator = StreamingEstimator::new(instance.num_paths());
        let builder = IncrementalEquationBuilder::new(instance, &mut estimator, &config.equations)?;
        Ok(TomographyService {
            context,
            builder,
            estimator,
            last_solution: None,
            estimate: None,
            inferred_at: None,
            reinfers: 0,
            num_paths: instance.num_paths(),
            history: None,
        })
    }

    /// Enables persistent observation history at `path`. If the file
    /// exists it is reloaded through the zero-copy tier: the v3 block is
    /// memory-mapped, validated, and attached to the streaming estimator
    /// as its immutable base segment — the accumulators are seeded from
    /// the mapped lanes, so the restarted daemon answers every query
    /// bit-identically to one that never stopped, without re-ingesting a
    /// single snapshot. If the file does not exist yet it is created on
    /// the first ingest. Either way, every subsequent successful ingest
    /// atomically rewrites the file with the full history (base + delta).
    ///
    /// Must be called before any snapshot is ingested. Returns the
    /// number of history snapshots reloaded (0 for a fresh file).
    pub fn enable_history(&mut self, path: &Path) -> Result<usize, ServeError> {
        if self.history.is_some() {
            return Err(ServeError::Persist(
                "observation history is already enabled".into(),
            ));
        }
        if self.estimator.num_snapshots() != 0 {
            return Err(ServeError::Persist(format!(
                "cannot enable history after {} snapshots were already ingested",
                self.estimator.num_snapshots()
            )));
        }
        if path.exists() {
            let mapped = persist::map_observations(path)?;
            if mapped.num_paths() != self.num_paths {
                return Err(ServeError::PathMismatch {
                    block: mapped.num_paths(),
                    instance: self.num_paths,
                });
            }
            let backing = mapped.backing();
            let bytes = mapped.byte_len();
            let snapshots = self.estimator.attach_history(mapped)?;
            self.history = Some(HistoryFile {
                path: path.to_path_buf(),
                backing,
                bytes,
                snapshots,
            });
            Ok(snapshots)
        } else {
            self.history = Some(HistoryFile {
                path: path.to_path_buf(),
                backing: "heap",
                bytes: 0,
                snapshots: 0,
            });
            Ok(0)
        }
    }

    /// Rewrites the history file with the full accumulated history
    /// (attached base segment + owned delta), atomically: a reader — or
    /// a concurrently restarting daemon — only ever sees a complete v3
    /// block. The previously mapped file is rename-replaced, never
    /// truncated, so the live mapping stays valid.
    fn persist_history(&mut self) -> Result<(), ServeError> {
        if let Some(history) = &mut self.history {
            let bytes = self.estimator.history_binary();
            persist::atomic_write(&history.path, &bytes)?;
            history.bytes = bytes.len();
            history.snapshots = self.estimator.num_snapshots();
        }
        Ok(())
    }

    /// Number of measurement paths in the topology.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of links (unknowns).
    pub fn num_links(&self) -> usize {
        self.context.num_links()
    }

    /// Snapshots ingested so far.
    pub fn num_snapshots(&self) -> usize {
        self.estimator.num_snapshots()
    }

    /// Re-inferences performed so far (cache hits excluded).
    pub fn reinfers(&self) -> u64 {
        self.reinfers
    }

    /// Ingests one framed v3 wire-format observation block (the payload
    /// of an `OBS` request). Returns the number of snapshots the block
    /// added. The block's snapshots append to the stream; a malformed
    /// block or a path-count mismatch leaves the service untouched.
    pub fn ingest_block(&mut self, bytes: &[u8]) -> Result<usize, ServeError> {
        let block = PathObservations::from_binary(bytes)
            .map_err(|e| ServeError::Protocol(format!("invalid observation block: {e}")))?;
        self.ingest_observations(&block)
    }

    /// Ingests already-decoded observations snapshot by snapshot.
    pub fn ingest_observations(&mut self, block: &PathObservations) -> Result<usize, ServeError> {
        if block.num_paths() != self.num_paths {
            return Err(ServeError::PathMismatch {
                block: block.num_paths(),
                instance: self.num_paths,
            });
        }
        for snapshot in block.snapshots() {
            self.estimator.push_snapshot(&snapshot)?;
        }
        self.persist_history()?;
        Ok(block.num_snapshots())
    }

    /// Pushes a single snapshot (one congested flag per path).
    pub fn push_snapshot(&mut self, congested: &[bool]) -> Result<(), ServeError> {
        self.estimator.push_snapshot(congested)?;
        self.persist_history()?;
        Ok(())
    }

    /// Re-infers the per-link congestion probabilities from everything
    /// ingested so far: refreshes the right-hand side in
    /// `O(#equations)` from the streaming accumulators and re-solves over
    /// the cached plan, seeding CGLS with the previous solution. If no
    /// snapshot arrived since the last re-inference the cached estimate
    /// is returned unchanged.
    ///
    /// On the dense plans the result is bit-identical to the offline
    /// [`InferenceContext::infer`] over the same accumulated
    /// observations.
    pub fn reinfer(&mut self) -> Result<&TomographyEstimate, ServeError> {
        if self.estimator.is_empty() {
            return Err(ServeError::Protocol(
                "no snapshots ingested yet: send OBS blocks before INFER".into(),
            ));
        }
        if self.inferred_at != Some(self.estimator.num_snapshots()) {
            let rhs = self.builder.rhs(&self.estimator)?;
            let (estimate, x) = self.context.reinfer(&rhs, self.last_solution.as_deref())?;
            self.last_solution = Some(x);
            self.estimate = Some(estimate);
            self.inferred_at = Some(self.estimator.num_snapshots());
            self.reinfers += 1;
        }
        Ok(self.estimate.as_ref().expect("estimate was just stored"))
    }

    /// The latest estimate, if any re-inference has run.
    pub fn estimate(&self) -> Option<&TomographyEstimate> {
        self.estimate.as_ref()
    }

    /// The latest congestion probability of one link.
    pub fn probability(&self, link: usize) -> Result<f64, ServeError> {
        let estimate = self.estimate.as_ref().ok_or(ServeError::NoEstimate)?;
        if link >= estimate.num_links() {
            return Err(ServeError::UnknownLink {
                link,
                num_links: estimate.num_links(),
            });
        }
        Ok(estimate.probabilities()[link])
    }

    /// The latest congestion probabilities of every link.
    pub fn probabilities(&self) -> Result<&[f64], ServeError> {
        Ok(self
            .estimate
            .as_ref()
            .ok_or(ServeError::NoEstimate)?
            .probabilities())
    }

    /// Whether a link's latest congestion probability exceeds
    /// `threshold`, together with the probability itself.
    pub fn link_state(&self, link: usize, threshold: f64) -> Result<(bool, f64), ServeError> {
        let p = self.probability(link)?;
        Ok((p > threshold, p))
    }

    /// A point-in-time summary for `STATUS` replies and logs.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            num_paths: self.num_paths,
            num_links: self.context.num_links(),
            num_snapshots: self.estimator.num_snapshots(),
            num_equations: self.builder.structure().num_equations(),
            reinfers: self.reinfers,
            solver: self.context.solver_kind(),
            inferred: self.estimate.is_some(),
            kernel: simd::active_tier().as_str().to_string(),
            history: self.history.as_ref().map(|h| HistoryStatus {
                path: h.path.display().to_string(),
                backing: h.backing.to_string(),
                snapshots: h.snapshots,
                bytes: h.bytes,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_topology::toy;

    /// Deterministic synthetic observations over Figure 1(a)'s three
    /// paths: a repeating pattern with all-good snapshots mixed in so
    /// every estimator probability is strictly positive.
    fn fig1a_observations(snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..snapshots {
            let congested = [i % 3 == 0, i % 4 == 0, i % 5 == 0];
            obs.record_snapshot(&congested).unwrap();
        }
        obs
    }

    #[test]
    fn ingest_then_reinfer_matches_offline_inference_bit_for_bit() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let mut service = TomographyService::new(&instance, &config).unwrap();
        let obs = fig1a_observations(60);

        // Stream the same observations in three uneven batches, re-infer
        // after each (exercising the warm chain), then compare the final
        // answer against the offline batch path.
        for range in [0..10, 10..25, 25..60] {
            let mut block = PathObservations::new(3);
            for i in range {
                block.record_snapshot(&obs.snapshot(i)).unwrap();
            }
            let added = service.ingest_block(&block.to_binary()).unwrap();
            assert_eq!(added, block.num_snapshots());
            service.reinfer().unwrap();
        }
        assert_eq!(service.num_snapshots(), 60);
        assert_eq!(service.reinfers(), 3);

        let offline = InferenceContext::new(&instance, &config)
            .unwrap()
            .infer(&obs)
            .unwrap();
        assert_eq!(
            service.probabilities().unwrap(),
            offline.probabilities(),
            "daemon-style streaming answer must be bit-identical to the offline batch answer"
        );
        for link in 0..service.num_links() {
            assert_eq!(
                service.probability(link).unwrap(),
                offline.congestion_probability(netcorr_topology::LinkId(link))
            );
        }
    }

    #[test]
    fn reinfer_with_no_new_data_reuses_the_cached_estimate() {
        let instance = toy::figure_1a();
        let mut service = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();
        service
            .ingest_observations(&fig1a_observations(20))
            .unwrap();
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 1);
        // No new snapshots: the estimate is served from cache.
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 1);
        // New data invalidates the cache.
        service.push_snapshot(&[true, false, false]).unwrap();
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 2);
    }

    #[test]
    fn errors_are_reported_without_corrupting_the_service() {
        let instance = toy::figure_1a();
        let mut service = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();

        // Queries before any inference.
        assert_eq!(service.probability(0), Err(ServeError::NoEstimate));
        assert!(service.probabilities().is_err());
        // Inference before any snapshot.
        assert!(matches!(service.reinfer(), Err(ServeError::Protocol(_))));
        // A garbage block.
        assert!(matches!(
            service.ingest_block(b"not a block"),
            Err(ServeError::Protocol(_))
        ));
        // A block over the wrong number of paths.
        let mut wrong = PathObservations::new(5);
        wrong.record_snapshot(&[false; 5]).unwrap();
        assert_eq!(
            service.ingest_block(&wrong.to_binary()),
            Err(ServeError::PathMismatch {
                block: 5,
                instance: 3
            })
        );
        assert_eq!(service.num_snapshots(), 0, "failed ingests add nothing");

        // The service still works afterwards.
        service
            .ingest_observations(&fig1a_observations(16))
            .unwrap();
        service.reinfer().unwrap();
        let (congested, p) = service.link_state(0, 0.5).unwrap();
        assert_eq!(congested, p > 0.5);
        assert!(matches!(
            service.probability(99),
            Err(ServeError::UnknownLink { link: 99, .. })
        ));

        let status = service.status();
        assert_eq!(status.num_paths, 3);
        assert_eq!(status.num_links, 4);
        assert_eq!(status.num_snapshots, 16);
        assert!(status.inferred);
        assert_eq!(status.reinfers, 1);
        assert!(status.num_equations > 0);
        assert!(["avx512", "avx2", "portable"].contains(&status.kernel.as_str()));
        assert_eq!(status.history, None);
    }

    #[test]
    fn history_survives_a_service_restart_bit_identically() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let dir =
            std::env::temp_dir().join(format!("netcorr_serve_history_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let file = dir.join("history.ncobs3");
        let obs = fig1a_observations(140);

        // First life: fresh history file, ingest snapshots 0..57 (not a
        // multiple of 64, so the persisted block ends mid-word), infer.
        let mut first = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(first.enable_history(&file).unwrap(), 0);
        let status = first.status();
        let history = status.history.expect("history enabled");
        assert_eq!(history.backing, "heap");
        assert_eq!(history.snapshots, 0);
        first
            .ingest_observations(&{
                let mut block = PathObservations::new(3);
                for i in 0..57 {
                    block.record_snapshot(&obs.snapshot(i)).unwrap();
                }
                block
            })
            .unwrap();
        first.reinfer().unwrap();
        assert!(file.exists());
        drop(first);

        // Second life: the history file is mapped and attached; the
        // service resumes at snapshot 57 without re-ingesting.
        let mut second = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(second.enable_history(&file).unwrap(), 57);
        assert_eq!(second.num_snapshots(), 57);
        let history = second.status().history.expect("history enabled");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(history.backing, "mmap");
        assert_eq!(history.snapshots, 57);
        assert_eq!(
            history.bytes,
            std::fs::metadata(&file).unwrap().len() as usize
        );
        second
            .ingest_observations(&{
                let mut block = PathObservations::new(3);
                for i in 57..140 {
                    block.record_snapshot(&obs.snapshot(i)).unwrap();
                }
                block
            })
            .unwrap();
        second.reinfer().unwrap();

        // Uninterrupted comparator over the same 140 snapshots.
        let mut whole = TomographyService::new(&instance, &config).unwrap();
        whole.ingest_observations(&obs).unwrap();
        whole.reinfer().unwrap();
        assert_eq!(
            second.probabilities().unwrap(),
            whole.probabilities().unwrap(),
            "restarted service must answer bit-identically to an uninterrupted one"
        );

        // The persisted file now carries the full 140-snapshot history.
        let final_history = second.status().history.unwrap();
        assert_eq!(final_history.snapshots, 140);
        assert_eq!(
            netcorr_eval::persist::read_observations(&file).unwrap(),
            obs
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_misuse_and_corruption_are_reported() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let dir = std::env::temp_dir().join(format!(
            "netcorr_serve_history_misuse_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");

        // Enabling twice, or after snapshots already arrived.
        let mut service = TomographyService::new(&instance, &config).unwrap();
        service.enable_history(&file).unwrap();
        assert!(matches!(
            service.enable_history(&file),
            Err(ServeError::Persist(_))
        ));
        let mut late = TomographyService::new(&instance, &config).unwrap();
        late.push_snapshot(&[false, false, false]).unwrap();
        assert!(matches!(
            late.enable_history(&file),
            Err(ServeError::Persist(_))
        ));

        // A corrupt history file fails the startup reload with a Persist
        // error naming the file — never a panic.
        service.push_snapshot(&[true, false, false]).unwrap();
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] |= 0x80; // dirty tail beyond the snapshot count
        std::fs::write(&file, &bytes).unwrap();
        let mut reloaded = TomographyService::new(&instance, &config).unwrap();
        match reloaded.enable_history(&file) {
            Err(ServeError::Persist(msg)) => {
                assert!(msg.contains("beyond slot"), "{msg}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }

        // A history file over the wrong path count is rejected up front.
        let mut wrong = PathObservations::new(7);
        wrong.record_snapshot(&[false; 7]).unwrap();
        std::fs::write(&file, wrong.to_binary()).unwrap();
        let mut mismatched = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(
            mismatched.enable_history(&file),
            Err(ServeError::PathMismatch {
                block: 7,
                instance: 3
            })
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
