//! The daemon's inference engine: streaming ingest + warm re-inference.
//!
//! [`TomographyService`] owns everything a long-running deployment needs
//! to keep a live congestion estimate over a fixed topology:
//!
//! * a [`StreamingEstimator`] fed one snapshot at a time (O(1) counter
//!   updates per snapshot, no history rescans);
//! * an [`IncrementalEquationBuilder`] whose equation structure was built
//!   once and whose right-hand side refreshes in `O(#equations)`;
//! * a cached [`InferenceContext`] (equation structure + independence
//!   selection + dense QR factorization or blocked sparse matrix), so a
//!   re-inference costs one RHS refresh plus one back-substitution
//!   (dense) or one warm-started CGLS run (sparse);
//! * the previous solution, used to seed the next CGLS run — on live
//!   streams consecutive refreshes are close, so the warm start converges
//!   in a fraction of a cold run's iterations.
//!
//! On the dense plans (the default for instances up to
//! `SolverConfig::dense_threshold` links) the warm seed is ignored and
//! every [`TomographyService::reinfer`] is **bit-identical** to the
//! offline [`InferenceContext::infer`] over the same accumulated
//! observations; the daemon is then a pure latency optimisation, not a
//! different estimator.
//!
//! With [`TomographyService::enable_history`] the service additionally
//! persists its observation stream **crash-safely**: each ingest is
//! transactional (rotate → write payload + generation/checksum footer →
//! only then mutate memory and ack), and startup recovers a file torn
//! by a crash mid-write back to the last fully-acked generation from
//! the rotated `.prev` copy. The surviving payload is memory-mapped
//! (zero-copy, see [`netcorr_measure::MappedObservations`]) and
//! attached to the streaming estimator as its base segment — a
//! restarted daemon resumes with accumulators bit-identical to a run
//! that replayed exactly the acked ingests.
//!
//! Solver trouble degrades gracefully instead of erroring: when a
//! re-inference fails or the sparse plan exhausts its CGLS iteration
//! budget, the last good estimate keeps being served and
//! [`TomographyService::stale`] (surfaced as `stale=` in the protocol)
//! flags it until a refresh succeeds.

use std::path::{Path, PathBuf};

use netcorr_core::context::InferenceContext;
use netcorr_core::equations::IncrementalEquationBuilder;
use netcorr_core::result::{SolverKind, TomographyEstimate};
use netcorr_core::AlgorithmConfig;
use netcorr_eval::persist;
use netcorr_measure::bitset::simd;
use netcorr_measure::{PathObservations, StreamingEstimator};
use netcorr_topology::TopologyInstance;

use crate::error::ServeError;
use crate::faults::{FaultPlan, FaultyHistoryWriter};

/// The persisted-observation-history portion of a [`ServiceStatus`]:
/// present only when the service was started with a history file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryStatus {
    /// The history file's path.
    pub path: String,
    /// How the reloaded history is served: `"mmap"` when the startup
    /// reload mapped the file through the zero-copy tier, `"heap"` when
    /// it fell back to a copying read (or the file did not exist yet).
    pub backing: String,
    /// Snapshots covered by the persisted file.
    pub snapshots: usize,
    /// Size of the persisted file in bytes (payload + footer).
    pub bytes: usize,
    /// Generation counter of the persisted file: incremented by every
    /// durable ingest, 0 for a fresh or legacy (footer-less) file.
    pub generation: u64,
    /// Whether startup had to *recover* the history — a torn or missing
    /// current file was replaced by the rotated previous generation (or
    /// discarded when no previous generation existed).
    pub recovered: bool,
}

/// A point-in-time summary of the service, the payload of the protocol's
/// `STATUS` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStatus {
    /// Number of measurement paths in the topology.
    pub num_paths: usize,
    /// Number of links (unknowns).
    pub num_links: usize,
    /// Snapshots ingested so far.
    pub num_snapshots: usize,
    /// Equations in the shared structure.
    pub num_equations: usize,
    /// Re-inferences performed so far (cache hits excluded).
    pub reinfers: u64,
    /// Which numerical path solves this topology's systems.
    pub solver: SolverKind,
    /// Whether an estimate is available for queries.
    pub inferred: bool,
    /// Whether the current estimate is **stale**: the last re-inference
    /// attempt failed (or hit the CGLS iteration cap) and queries are
    /// served from the last good estimate instead of erroring.
    pub stale: bool,
    /// The active SIMD kernel tier (`avx512`, `avx2` or `portable`).
    pub kernel: String,
    /// Observation-history persistence, when enabled.
    pub history: Option<HistoryStatus>,
}

/// The service's live record of its history file.
struct HistoryFile {
    path: PathBuf,
    /// `"mmap"` or `"heap"` — how the startup reload is served.
    backing: &'static str,
    /// Bytes in the file as of the last persist (or the startup reload).
    bytes: usize,
    /// Snapshots in the file as of the last persist.
    snapshots: usize,
    /// Generation of the last durable write (0 = fresh/legacy).
    generation: u64,
    /// Whether startup recovered from a torn write (see
    /// [`netcorr_eval::persist::recover_history`]).
    recovered: bool,
}

/// The online tomography engine: ingest snapshots, re-infer on demand,
/// answer probability queries from the latest estimate.
pub struct TomographyService {
    context: InferenceContext,
    builder: IncrementalEquationBuilder,
    estimator: StreamingEstimator,
    /// The solved log-good-probabilities of the previous re-inference,
    /// seeding the next CGLS run on the sparse plan.
    last_solution: Option<Vec<f64>>,
    /// The latest estimate; queries are answered from here, so they are
    /// O(1) and never trigger a solve.
    estimate: Option<TomographyEstimate>,
    /// Snapshot count at which `estimate` was computed; a re-inference
    /// with no new data returns the cached estimate.
    inferred_at: Option<usize>,
    reinfers: u64,
    num_paths: usize,
    /// Set by [`TomographyService::enable_history`]: the on-disk history
    /// file rewritten (atomically) after every successful ingest.
    history: Option<HistoryFile>,
    /// How history bytes reach the disk. Defaults to the atomic
    /// stage-and-rename writer; chaos runs install a seeded
    /// fault-injecting writer through
    /// [`TomographyService::set_fault_plan`].
    history_writer: FaultyHistoryWriter,
    /// Whether the served estimate is stale (see [`ServiceStatus::stale`]).
    stale: bool,
    /// The sparse solver's iteration cap: a sparse re-inference that
    /// spends this many iterations did not converge and is served as
    /// stale rather than trusted fresh.
    cgls_cap: usize,
    /// Test hook: fail the next re-inference attempt with this message,
    /// exercising the degraded-serving path deterministically.
    reinfer_poison: Option<String>,
}

impl TomographyService {
    /// Builds the service for a topology instance: inference context
    /// (structure, selection, factorization), incremental equation
    /// builder and an empty streaming estimator. All per-topology work
    /// happens here; nothing later in the service's life rebuilds it.
    pub fn new(instance: &TopologyInstance, config: &AlgorithmConfig) -> Result<Self, ServeError> {
        let context = InferenceContext::new(instance, config)?;
        let mut estimator = StreamingEstimator::new(instance.num_paths());
        let builder = IncrementalEquationBuilder::new(instance, &mut estimator, &config.equations)?;
        Ok(TomographyService {
            context,
            builder,
            estimator,
            last_solution: None,
            estimate: None,
            inferred_at: None,
            reinfers: 0,
            num_paths: instance.num_paths(),
            history: None,
            history_writer: FaultPlan::none().history_writer(),
            stale: false,
            cgls_cap: config.solver.cgls_iterations,
            reinfer_poison: None,
        })
    }

    /// Routes history persistence through `plan`'s fault-injecting
    /// writer. [`FaultPlan::none`] (the construction default) is
    /// bit-invisible: it *is* the atomic stage-and-rename writer.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.history_writer = plan.history_writer();
    }

    /// Test hook: makes the next re-inference attempt fail with
    /// `message`, so the degraded (stale-serving) path can be exercised
    /// without constructing a genuinely unsolvable system.
    #[cfg(test)]
    pub(crate) fn poison_next_reinfer(&mut self, message: &str) {
        self.reinfer_poison = Some(message.to_string());
    }

    /// Enables persistent observation history at `path`, with crash-safe
    /// recovery. Startup runs
    /// [`netcorr_eval::persist::recover_history`]: a valid file (sealed
    /// with a generation + checksum footer, or a legacy footer-less v3
    /// block) is used as-is; a file torn by a crash mid-write is
    /// replaced by the rotated `<path>.prev` generation — i.e. the last
    /// fully-acked ingest — and the service reports `recovered=true` in
    /// its status. The surviving payload is memory-mapped through the
    /// zero-copy tier and attached to the streaming estimator as its
    /// immutable base segment, so the restarted daemon answers every
    /// query bit-identically to one that replayed exactly the acked
    /// ingests.
    ///
    /// Every subsequent successful ingest rotates the current file to
    /// `<path>.prev` and durably writes the next generation (payload +
    /// footer) before the ingest is acknowledged.
    ///
    /// Must be called before any snapshot is ingested. Returns the
    /// number of history snapshots reloaded (0 for a fresh file).
    pub fn enable_history(&mut self, path: &Path) -> Result<usize, ServeError> {
        if self.history.is_some() {
            return Err(ServeError::Persist(
                "observation history is already enabled".into(),
            ));
        }
        if self.estimator.num_snapshots() != 0 {
            return Err(ServeError::Persist(format!(
                "cannot enable history after {} snapshots were already ingested",
                self.estimator.num_snapshots()
            )));
        }
        let recovery = persist::recover_history(path)?;
        if let Some(payload_len) = recovery.payload_len {
            let mapped = persist::map_observations_prefix(path, payload_len)?;
            if mapped.num_paths() != self.num_paths {
                return Err(ServeError::PathMismatch {
                    block: mapped.num_paths(),
                    instance: self.num_paths,
                });
            }
            let backing = mapped.backing();
            let bytes = mapped.byte_len();
            let snapshots = self.estimator.attach_history(mapped)?;
            self.history = Some(HistoryFile {
                path: path.to_path_buf(),
                backing,
                bytes,
                snapshots,
                generation: recovery.generation,
                recovered: recovery.recovered,
            });
            Ok(snapshots)
        } else {
            self.history = Some(HistoryFile {
                path: path.to_path_buf(),
                backing: "heap",
                bytes: 0,
                snapshots: 0,
                generation: 0,
                recovered: recovery.recovered,
            });
            Ok(0)
        }
    }

    /// Durably persists the history *as it will be after* `block` is
    /// appended, before the in-memory estimator is touched: the
    /// prospective payload (attached base + owned delta + block) is
    /// sealed with the next generation's footer, the current file is
    /// rotated to `.prev`, and the new generation is written. Only a
    /// successful write lets the ingest proceed — on failure the
    /// rotation is undone and the service (memory *and* disk) still
    /// reflects exactly the previously acked generation.
    fn persist_with_block(&mut self, block: &PathObservations) -> Result<(), ServeError> {
        let Some(history) = &mut self.history else {
            return Ok(());
        };
        let payload = {
            let mut delta = self.estimator.observations().clone();
            delta
                .concat(block)
                .map_err(|e| ServeError::Persist(format!("cannot append block: {e}")))?;
            match self.estimator.base() {
                Some(base) => base
                    .view()
                    .merged_binary(&delta)
                    .map_err(|e| ServeError::Persist(format!("cannot merge history: {e}")))?,
                None => delta.to_binary(),
            }
        };
        let generation = history.generation + 1;
        let sealed = persist::encode_history(&payload, generation);
        let prev = persist::history_prev_path(&history.path);
        let rotated = history.path.exists();
        if rotated {
            std::fs::rename(&history.path, &prev).map_err(|e| {
                ServeError::Persist(format!("cannot rotate history to {}: {e}", prev.display()))
            })?;
        }
        match self.history_writer.write(&history.path, &sealed) {
            Ok(()) => {
                history.generation = generation;
                history.bytes = sealed.len();
                history.snapshots = self.estimator.num_snapshots() + block.num_snapshots();
                Ok(())
            }
            Err(e) => {
                // Put the last acked generation back at the primary path
                // so a *continuing* daemon stays consistent; a crash
                // here instead is what recover_history handles.
                if rotated {
                    let _ = std::fs::rename(&prev, &history.path);
                }
                Err(ServeError::Persist(format!(
                    "history write failed (generation {generation} not acked): {e}"
                )))
            }
        }
    }

    /// Number of measurement paths in the topology.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of links (unknowns).
    pub fn num_links(&self) -> usize {
        self.context.num_links()
    }

    /// Snapshots ingested so far.
    pub fn num_snapshots(&self) -> usize {
        self.estimator.num_snapshots()
    }

    /// Re-inferences performed so far (cache hits excluded).
    pub fn reinfers(&self) -> u64 {
        self.reinfers
    }

    /// Ingests one framed v3 wire-format observation block (the payload
    /// of an `OBS` request). Returns the number of snapshots the block
    /// added. The block's snapshots append to the stream; a malformed
    /// block or a path-count mismatch leaves the service untouched.
    pub fn ingest_block(&mut self, bytes: &[u8]) -> Result<usize, ServeError> {
        let block = PathObservations::from_binary(bytes)
            .map_err(|e| ServeError::Protocol(format!("invalid observation block: {e}")))?;
        self.ingest_observations(&block)
    }

    /// Ingests already-decoded observations. The ingest is
    /// **transactional**: with history enabled, the prospective history
    /// (including this block) is durably persisted as the next
    /// generation *first*, and only a successful write mutates the
    /// in-memory estimator. A failed persist leaves the service —
    /// memory and disk — exactly at the previously acked generation, so
    /// an `OK` reply to an `OBS` request really means "this block
    /// survives a crash".
    pub fn ingest_observations(&mut self, block: &PathObservations) -> Result<usize, ServeError> {
        if block.num_paths() != self.num_paths {
            return Err(ServeError::PathMismatch {
                block: block.num_paths(),
                instance: self.num_paths,
            });
        }
        self.persist_with_block(block)?;
        for snapshot in block.snapshots() {
            self.estimator
                .push_snapshot(&snapshot)
                .expect("snapshot width was validated against the instance");
        }
        Ok(block.num_snapshots())
    }

    /// Pushes a single snapshot (one congested flag per path), with the
    /// same transactional persistence as [`Self::ingest_observations`].
    pub fn push_snapshot(&mut self, congested: &[bool]) -> Result<(), ServeError> {
        let mut block = PathObservations::new(self.num_paths);
        block.record_snapshot(congested)?;
        self.ingest_observations(&block)?;
        Ok(())
    }

    /// Re-infers the per-link congestion probabilities from everything
    /// ingested so far: refreshes the right-hand side in
    /// `O(#equations)` from the streaming accumulators and re-solves over
    /// the cached plan, seeding CGLS with the previous solution. If no
    /// snapshot arrived since the last re-inference the cached estimate
    /// is returned unchanged.
    ///
    /// **Graceful degradation:** solver trouble is an expected state,
    /// not an error. If the solve fails — or the sparse plan burns its
    /// whole CGLS iteration budget without converging — and a previous
    /// good estimate exists, that estimate keeps being served, flagged
    /// stale (see [`Self::stale`]); the next re-inference attempt tries
    /// again. Only with no prior estimate at all does a solve failure
    /// surface as an error (a capped-but-computed first estimate is
    /// served, flagged stale).
    ///
    /// On the dense plans the result is bit-identical to the offline
    /// [`InferenceContext::infer`] over the same accumulated
    /// observations.
    pub fn reinfer(&mut self) -> Result<&TomographyEstimate, ServeError> {
        if self.estimator.is_empty() {
            return Err(ServeError::Protocol(
                "no snapshots ingested yet: send OBS blocks before INFER".into(),
            ));
        }
        if self.inferred_at != Some(self.estimator.num_snapshots()) {
            let attempt = match self.reinfer_poison.take() {
                Some(message) => Err(ServeError::Io(message)),
                None => {
                    let rhs = self.builder.rhs(&self.estimator)?;
                    self.context
                        .reinfer(&rhs, self.last_solution.as_deref())
                        .map_err(ServeError::from)
                }
            };
            match attempt {
                Ok((estimate, x)) => {
                    let capped = estimate.diagnostics.solver == SolverKind::SparseIterative
                        && self.cgls_cap > 0
                        && estimate.diagnostics.iterations >= self.cgls_cap;
                    if capped && self.estimate.is_some() {
                        // Non-converged refresh over a good prior: keep
                        // serving the prior, don't poison the warm seed.
                        self.stale = true;
                    } else {
                        self.last_solution = Some(x);
                        self.estimate = Some(estimate);
                        self.inferred_at = Some(self.estimator.num_snapshots());
                        self.stale = capped;
                        self.reinfers += 1;
                    }
                }
                Err(e) => {
                    if self.estimate.is_none() {
                        return Err(e);
                    }
                    // Keep the last good estimate; `inferred_at` stays
                    // behind the stream so the next INFER retries.
                    self.stale = true;
                }
            }
        }
        Ok(self
            .estimate
            .as_ref()
            .expect("an estimate exists on every Ok path"))
    }

    /// Whether queries are currently served from a stale estimate (the
    /// last re-inference attempt failed or did not converge).
    pub fn stale(&self) -> bool {
        self.stale
    }

    /// The latest estimate, if any re-inference has run.
    pub fn estimate(&self) -> Option<&TomographyEstimate> {
        self.estimate.as_ref()
    }

    /// The latest congestion probability of one link.
    pub fn probability(&self, link: usize) -> Result<f64, ServeError> {
        let estimate = self.estimate.as_ref().ok_or(ServeError::NoEstimate)?;
        if link >= estimate.num_links() {
            return Err(ServeError::UnknownLink {
                link,
                num_links: estimate.num_links(),
            });
        }
        Ok(estimate.probabilities()[link])
    }

    /// The latest congestion probabilities of every link.
    pub fn probabilities(&self) -> Result<&[f64], ServeError> {
        Ok(self
            .estimate
            .as_ref()
            .ok_or(ServeError::NoEstimate)?
            .probabilities())
    }

    /// Whether a link's latest congestion probability exceeds
    /// `threshold`, together with the probability itself.
    pub fn link_state(&self, link: usize, threshold: f64) -> Result<(bool, f64), ServeError> {
        let p = self.probability(link)?;
        Ok((p > threshold, p))
    }

    /// A point-in-time summary for `STATUS` replies and logs.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            num_paths: self.num_paths,
            num_links: self.context.num_links(),
            num_snapshots: self.estimator.num_snapshots(),
            num_equations: self.builder.structure().num_equations(),
            reinfers: self.reinfers,
            solver: self.context.solver_kind(),
            inferred: self.estimate.is_some(),
            stale: self.stale,
            kernel: simd::active_tier().as_str().to_string(),
            history: self.history.as_ref().map(|h| HistoryStatus {
                path: h.path.display().to_string(),
                backing: h.backing.to_string(),
                snapshots: h.snapshots,
                bytes: h.bytes,
                generation: h.generation,
                recovered: h.recovered,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_topology::toy;

    /// Deterministic synthetic observations over Figure 1(a)'s three
    /// paths: a repeating pattern with all-good snapshots mixed in so
    /// every estimator probability is strictly positive.
    fn fig1a_observations(snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..snapshots {
            let congested = [i % 3 == 0, i % 4 == 0, i % 5 == 0];
            obs.record_snapshot(&congested).unwrap();
        }
        obs
    }

    #[test]
    fn ingest_then_reinfer_matches_offline_inference_bit_for_bit() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let mut service = TomographyService::new(&instance, &config).unwrap();
        let obs = fig1a_observations(60);

        // Stream the same observations in three uneven batches, re-infer
        // after each (exercising the warm chain), then compare the final
        // answer against the offline batch path.
        for range in [0..10, 10..25, 25..60] {
            let mut block = PathObservations::new(3);
            for i in range {
                block.record_snapshot(&obs.snapshot(i)).unwrap();
            }
            let added = service.ingest_block(&block.to_binary()).unwrap();
            assert_eq!(added, block.num_snapshots());
            service.reinfer().unwrap();
        }
        assert_eq!(service.num_snapshots(), 60);
        assert_eq!(service.reinfers(), 3);

        let offline = InferenceContext::new(&instance, &config)
            .unwrap()
            .infer(&obs)
            .unwrap();
        assert_eq!(
            service.probabilities().unwrap(),
            offline.probabilities(),
            "daemon-style streaming answer must be bit-identical to the offline batch answer"
        );
        for link in 0..service.num_links() {
            assert_eq!(
                service.probability(link).unwrap(),
                offline.congestion_probability(netcorr_topology::LinkId(link))
            );
        }
    }

    #[test]
    fn reinfer_with_no_new_data_reuses_the_cached_estimate() {
        let instance = toy::figure_1a();
        let mut service = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();
        service
            .ingest_observations(&fig1a_observations(20))
            .unwrap();
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 1);
        // No new snapshots: the estimate is served from cache.
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 1);
        // New data invalidates the cache.
        service.push_snapshot(&[true, false, false]).unwrap();
        service.reinfer().unwrap();
        assert_eq!(service.reinfers(), 2);
    }

    #[test]
    fn errors_are_reported_without_corrupting_the_service() {
        let instance = toy::figure_1a();
        let mut service = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();

        // Queries before any inference.
        assert_eq!(service.probability(0), Err(ServeError::NoEstimate));
        assert!(service.probabilities().is_err());
        // Inference before any snapshot.
        assert!(matches!(service.reinfer(), Err(ServeError::Protocol(_))));
        // A garbage block.
        assert!(matches!(
            service.ingest_block(b"not a block"),
            Err(ServeError::Protocol(_))
        ));
        // A block over the wrong number of paths.
        let mut wrong = PathObservations::new(5);
        wrong.record_snapshot(&[false; 5]).unwrap();
        assert_eq!(
            service.ingest_block(&wrong.to_binary()),
            Err(ServeError::PathMismatch {
                block: 5,
                instance: 3
            })
        );
        assert_eq!(service.num_snapshots(), 0, "failed ingests add nothing");

        // The service still works afterwards.
        service
            .ingest_observations(&fig1a_observations(16))
            .unwrap();
        service.reinfer().unwrap();
        let (congested, p) = service.link_state(0, 0.5).unwrap();
        assert_eq!(congested, p > 0.5);
        assert!(matches!(
            service.probability(99),
            Err(ServeError::UnknownLink { link: 99, .. })
        ));

        let status = service.status();
        assert_eq!(status.num_paths, 3);
        assert_eq!(status.num_links, 4);
        assert_eq!(status.num_snapshots, 16);
        assert!(status.inferred);
        assert_eq!(status.reinfers, 1);
        assert!(status.num_equations > 0);
        assert!(["avx512", "avx2", "portable"].contains(&status.kernel.as_str()));
        assert_eq!(status.history, None);
    }

    #[test]
    fn history_survives_a_service_restart_bit_identically() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let dir =
            std::env::temp_dir().join(format!("netcorr_serve_history_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let file = dir.join("history.ncobs3");
        let obs = fig1a_observations(140);

        // First life: fresh history file, ingest snapshots 0..57 (not a
        // multiple of 64, so the persisted block ends mid-word), infer.
        let mut first = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(first.enable_history(&file).unwrap(), 0);
        let status = first.status();
        let history = status.history.expect("history enabled");
        assert_eq!(history.backing, "heap");
        assert_eq!(history.snapshots, 0);
        first
            .ingest_observations(&{
                let mut block = PathObservations::new(3);
                for i in 0..57 {
                    block.record_snapshot(&obs.snapshot(i)).unwrap();
                }
                block
            })
            .unwrap();
        first.reinfer().unwrap();
        assert!(file.exists());
        drop(first);

        // Second life: the history file is mapped and attached; the
        // service resumes at snapshot 57 without re-ingesting.
        let mut second = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(second.enable_history(&file).unwrap(), 57);
        assert_eq!(second.num_snapshots(), 57);
        let history = second.status().history.expect("history enabled");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(history.backing, "mmap");
        assert_eq!(history.snapshots, 57);
        assert_eq!(
            history.bytes,
            std::fs::metadata(&file).unwrap().len() as usize
        );
        second
            .ingest_observations(&{
                let mut block = PathObservations::new(3);
                for i in 57..140 {
                    block.record_snapshot(&obs.snapshot(i)).unwrap();
                }
                block
            })
            .unwrap();
        second.reinfer().unwrap();

        // Uninterrupted comparator over the same 140 snapshots.
        let mut whole = TomographyService::new(&instance, &config).unwrap();
        whole.ingest_observations(&obs).unwrap();
        whole.reinfer().unwrap();
        assert_eq!(
            second.probabilities().unwrap(),
            whole.probabilities().unwrap(),
            "restarted service must answer bit-identically to an uninterrupted one"
        );

        // The persisted file now carries the full 140-snapshot history.
        let final_history = second.status().history.unwrap();
        assert_eq!(final_history.snapshots, 140);
        assert_eq!(
            netcorr_eval::persist::read_observations(&file).unwrap(),
            obs
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_misuse_and_corruption_are_reported() {
        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let dir = std::env::temp_dir().join(format!(
            "netcorr_serve_history_misuse_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");

        // Enabling twice, or after snapshots already arrived.
        let mut service = TomographyService::new(&instance, &config).unwrap();
        service.enable_history(&file).unwrap();
        assert!(matches!(
            service.enable_history(&file),
            Err(ServeError::Persist(_))
        ));
        let mut late = TomographyService::new(&instance, &config).unwrap();
        late.push_snapshot(&[false, false, false]).unwrap();
        assert!(matches!(
            late.enable_history(&file),
            Err(ServeError::Persist(_))
        ));

        // A corrupt history file no longer refuses startup: with no
        // rotated previous generation it is quarantined and the service
        // starts fresh, reporting recovered=true.
        service.push_snapshot(&[true, false, false]).unwrap();
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80; // breaks the footer checksum
        std::fs::write(&file, &bytes).unwrap();
        std::fs::remove_file(persist::history_prev_path(&file)).ok();
        let mut reloaded = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(reloaded.enable_history(&file).unwrap(), 0);
        let status = reloaded.status().history.unwrap();
        assert!(status.recovered);
        assert_eq!(status.generation, 0);
        assert!(persist::history_torn_path(&file).exists());

        // A history file over the wrong path count is rejected up front.
        let mut wrong = PathObservations::new(7);
        wrong.record_snapshot(&[false; 7]).unwrap();
        std::fs::write(&file, wrong.to_binary()).unwrap();
        let mut mismatched = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(
            mismatched.enable_history(&file),
            Err(ServeError::PathMismatch {
                block: 7,
                instance: 3
            })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_history_write_is_unacked_and_recovery_is_exact() {
        use crate::faults::{FaultPlan, FaultProfile};

        let instance = toy::figure_1a();
        let config = AlgorithmConfig::default();
        let dir = std::env::temp_dir().join(format!(
            "netcorr_serve_torn_write_test_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let file = dir.join("history.ncobs3");
        let obs = fig1a_observations(90);
        let block = |range: std::ops::Range<usize>| {
            let mut b = PathObservations::new(3);
            for i in range {
                b.record_snapshot(&obs.snapshot(i)).unwrap();
            }
            b
        };

        // Writer tears the third history write (reported, not aborted).
        let mut profile = FaultProfile::torn_history(77);
        profile.torn_write_aborts = false;
        profile.tear_history_write = 3;
        let mut service = TomographyService::new(&instance, &config).unwrap();
        service.enable_history(&file).unwrap();
        service.set_fault_plan(&FaultPlan::seeded(77, profile));

        assert_eq!(service.ingest_observations(&block(0..20)).unwrap(), 20);
        assert_eq!(service.ingest_observations(&block(20..45)).unwrap(), 25);
        // The torn write: the ingest is rejected and the service rolls
        // back to the acked generation, in memory and on disk.
        let err = service.ingest_observations(&block(45..70)).unwrap_err();
        assert!(matches!(err, ServeError::Persist(_)), "{err:?}");
        assert_eq!(service.num_snapshots(), 45, "unacked block must not land");
        let status = service.status().history.unwrap();
        assert_eq!(status.generation, 2);
        assert_eq!(status.snapshots, 45);
        // Later ingests keep working (the schedule tears exactly once).
        assert_eq!(service.ingest_observations(&block(45..70)).unwrap(), 25);
        assert_eq!(service.status().history.unwrap().generation, 3);
        service.reinfer().unwrap();
        drop(service);

        // A restart over the survived file resumes at the acked prefix,
        // bit-identical to a clean service over the same ingests.
        let mut restarted = TomographyService::new(&instance, &config).unwrap();
        assert_eq!(restarted.enable_history(&file).unwrap(), 70);
        let status = restarted.status().history.unwrap();
        assert_eq!(status.generation, 3);
        assert!(!status.recovered, "the file itself was never torn");
        restarted.reinfer().unwrap();
        let mut clean = TomographyService::new(&instance, &config).unwrap();
        clean.ingest_observations(&block(0..70)).unwrap();
        clean.reinfer().unwrap();
        assert_eq!(
            restarted.probabilities().unwrap(),
            clean.probabilities().unwrap()
        );

        // Now simulate the crash flavour: tear the file on disk (as an
        // aborting writer would leave it) and restart — recovery falls
        // back to the rotated previous generation.
        let sealed = std::fs::read(&file).unwrap();
        std::fs::write(&file, &sealed[..sealed.len() / 2]).unwrap();
        let mut recovered = TomographyService::new(&instance, &config).unwrap();
        // .prev holds generation 2 (snapshots 0..45).
        assert_eq!(recovered.enable_history(&file).unwrap(), 45);
        let status = recovered.status().history.unwrap();
        assert!(status.recovered);
        assert_eq!(status.generation, 2);
        recovered.reinfer().unwrap();
        let mut acked = TomographyService::new(&instance, &config).unwrap();
        acked.ingest_observations(&block(0..45)).unwrap();
        acked.reinfer().unwrap();
        assert_eq!(
            recovered.probabilities().unwrap(),
            acked.probabilities().unwrap(),
            "recovered answers must be bit-identical to replaying only acked ingests"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_reinference_serves_the_last_good_estimate_as_stale() {
        let instance = toy::figure_1a();
        let mut service = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();
        service
            .ingest_observations(&fig1a_observations(30))
            .unwrap();
        service.reinfer().unwrap();
        assert!(!service.stale());
        let good: Vec<f64> = service.probabilities().unwrap().to_vec();

        // New data arrives, but the refresh fails: the last good
        // estimate keeps being served, flagged stale.
        service.push_snapshot(&[true, true, false]).unwrap();
        service.poison_next_reinfer("injected solver failure");
        service.reinfer().unwrap();
        assert!(service.stale());
        assert_eq!(service.probabilities().unwrap(), good.as_slice());
        assert!(service.status().stale);

        // The next attempt succeeds and clears the flag.
        service.reinfer().unwrap();
        assert!(!service.stale());
        assert!(!service.status().stale);
        assert_ne!(service.probabilities().unwrap(), good.as_slice());

        // With no prior estimate at all, failure is still an error.
        let mut fresh = TomographyService::new(&instance, &AlgorithmConfig::default()).unwrap();
        fresh.ingest_observations(&fig1a_observations(10)).unwrap();
        fresh.poison_next_reinfer("injected solver failure");
        assert!(fresh.reinfer().is_err());
        assert!(fresh.reinfer().is_ok(), "poison clears after one attempt");
    }

    #[test]
    fn capped_cgls_runs_are_flagged_stale() {
        let instance = toy::figure_1a();
        // Force the sparse plan (dense_threshold below the link count)
        // and an absurd 1-iteration CGLS budget: the very first solve
        // hits the cap and is served flagged stale.
        let mut config = AlgorithmConfig::default();
        config.solver.dense_threshold = 0;
        config.solver.cgls_iterations = 1;
        config.solver.cgls_tolerance = 1e-300;
        let mut service = TomographyService::new(&instance, &config).unwrap();
        service
            .ingest_observations(&fig1a_observations(40))
            .unwrap();
        let estimate = service.reinfer().unwrap();
        assert_eq!(estimate.diagnostics.solver, SolverKind::SparseIterative);
        assert!(service.stale(), "a capped first solve must be stale");

        // A generous budget converges and clears the flag.
        let mut generous = AlgorithmConfig::default();
        generous.solver.dense_threshold = 0;
        let mut service = TomographyService::new(&instance, &generous).unwrap();
        service
            .ingest_observations(&fig1a_observations(40))
            .unwrap();
        service.reinfer().unwrap();
        assert!(!service.stale());
    }
}
