//! The socket front-end: accept loop, per-connection sessions, graceful
//! shutdown.
//!
//! [`Server`] listens on TCP (`host:port`) or, on Unix platforms, a Unix
//! domain socket (`unix:/path`). Each accepted connection gets its own
//! handler thread reading request lines and writing single-line replies;
//! the [`TomographyService`] sits behind one mutex, so concurrent
//! sessions observe a serializable history of ingests and inferences.
//!
//! Shutdown is cooperative: a `SHUTDOWN` request (or the
//! [`Server::shutdown_handle`] flag flipping, e.g. from a signal
//! handler) makes the nonblocking accept loop stop, the listener close,
//! and `run` join every session thread before returning. In-flight
//! requests finish; per-request failures are `ERR` replies, never
//! connection drops.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol;
use crate::service::TomographyService;

/// How long the accept loop sleeps when no connection is pending; bounds
/// the shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on accepted connections. A session blocked waiting for
/// the next request wakes at this cadence to poll the shutdown flag, so
/// `SHUTDOWN` (or a flipped [`Server::shutdown_handle`]) can join every
/// session even while other clients sit idle on open connections.
const SESSION_READ_POLL: Duration = Duration::from_millis(100);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix domain socket path (Unix platforms only).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address argument: a `unix:` prefix selects a Unix
    /// domain socket, anything else is a TCP `host:port`.
    pub fn parse(arg: &str) -> ListenAddr {
        match arg.strip_prefix("unix:") {
            Some(path) => ListenAddr::Unix(PathBuf::from(path)),
            None => ListenAddr::Tcp(arg.to_string()),
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The daemon's socket server: one listener, one shared service, one
/// session thread per connection.
pub struct Server {
    listener: Listener,
    service: Arc<Mutex<TomographyService>>,
    shutdown: Arc<AtomicBool>,
    /// The Unix socket path to unlink once the server stops.
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the listener and wraps the service for concurrent sessions.
    /// A stale Unix socket file from a previous run is replaced.
    pub fn bind(service: TomographyService, addr: &ListenAddr) -> std::io::Result<Server> {
        let (listener, unix_path) = match addr {
            ListenAddr::Tcp(tcp) => (Listener::Tcp(TcpListener::bind(tcp.as_str())?), None),
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // Binding fails with AddrInUse if the file exists, even
                // when no process listens on it; remove leftovers first.
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Some(path.clone()),
                )
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix domain sockets are not available on this platform",
                ))
            }
        };
        Ok(Server {
            listener,
            service: Arc::new(Mutex::new(service)),
            shutdown: Arc::new(AtomicBool::new(false)),
            unix_path,
        })
    }

    /// The bound address in `ListenAddr` display form — for TCP this is
    /// the **actual** address, so binding port 0 reports the ephemeral
    /// port a client should connect to.
    pub fn local_description(&self) -> String {
        match &self.listener {
            Listener::Tcp(listener) => match listener.local_addr() {
                Ok(addr) => format!("tcp://{addr}"),
                Err(_) => "tcp://<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(_) => match &self.unix_path {
                Some(path) => format!("unix://{}", path.display()),
                None => "unix://<unknown>".to_string(),
            },
        }
    }

    /// A handle that makes [`Server::run`] return when set to `true`
    /// (the in-band `SHUTDOWN` request sets the same flag).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until shutdown, then joins every session
    /// thread and removes the Unix socket file (if any).
    pub fn run(self) -> std::io::Result<()> {
        match &self.listener {
            Listener::Tcp(listener) => listener.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(listener) => listener.set_nonblocking(true)?,
        }
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Tcp(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(SESSION_READ_POLL))?;
                        Some(spawn_session(stream, &self.service, &self.shutdown))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(SESSION_READ_POLL))?;
                        Some(spawn_session(stream, &self.service, &self.shutdown))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(handle) => {
                    sessions.push(handle);
                    // Opportunistically reap finished sessions so a
                    // long-lived daemon does not accumulate handles.
                    sessions.retain(|h| !h.is_finished());
                }
                None => std::thread::sleep(ACCEPT_POLL),
            }
        }
        for handle in sessions {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn spawn_session<S>(
    stream: S,
    service: &Arc<Mutex<TomographyService>>,
    shutdown: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    S: std::io::Read + Write + Send + 'static,
{
    let service = Arc::clone(service);
    let shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || {
        // Session errors (a peer vanishing mid-request) just end the
        // session; the daemon itself keeps serving.
        let _ = run_session(stream, &service, &shutdown);
    })
}

/// Whether a read error is the periodic read-timeout tick (reported as
/// `WouldBlock` on Unix, `TimedOut` on other platforms) rather than a
/// real failure.
fn is_read_poll(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A reader that retries the underlying stream's read-timeout ticks
/// until shutdown, so a framed `OBS` payload can span several ticks on a
/// slow client without failing the request.
struct PolledReader<'a, R> {
    inner: &'a mut R,
    shutdown: &'a AtomicBool,
}

impl<R: std::io::Read> std::io::Read for PolledReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e) if is_read_poll(&e) && !self.shutdown.load(Ordering::SeqCst) => continue,
                result => return result,
            }
        }
    }
}

/// Serves one connection: read a request line, dispatch it against the
/// shared service (holding the lock across the OBS payload read, so a
/// block ingests atomically), write the single-line reply. Returns on
/// EOF, on a socket error, on shutdown (while idle between requests),
/// or after replying to `SHUTDOWN`.
fn run_session<S: std::io::Read + Write>(
    stream: S,
    service: &Mutex<TomographyService>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // A timed-out read keeps any partial line accumulated so far and
        // polls the shutdown flag; a request already in flight is still
        // completed before the session exits.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF: client closed the connection.
            Ok(_) => {}
            Err(e) if is_read_poll(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = line.trim_end_matches(['\r', '\n']);
        let reply = if request.trim().is_empty() {
            line.clear();
            continue;
        } else {
            let mut service = service.lock().expect("service mutex poisoned");
            let mut body = PolledReader {
                inner: &mut reader,
                shutdown,
            };
            protocol::execute(&mut service, request, &mut body)
        };
        line.clear();
        let stream = reader.get_mut();
        stream.write_all(reply.text.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        if reply.shutdown {
            shutdown.store(true, Ordering::SeqCst);
            return Ok(());
        }
    }
}

// Session streams the server accepts. (TcpStream/UnixStream already
// implement Read + Write + Send; nothing to add — this block just keeps
// the bound requirements in one visible place.)
#[allow(dead_code)]
fn _assert_session_streams() {
    fn assert_stream<S: std::io::Read + Write + Send + 'static>() {}
    assert_stream::<TcpStream>();
    #[cfg(unix)]
    assert_stream::<UnixStream>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use netcorr_core::AlgorithmConfig;
    use netcorr_measure::PathObservations;
    use netcorr_topology::toy;

    fn service() -> TomographyService {
        TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default()).unwrap()
    }

    fn observations(snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..snapshots {
            obs.record_snapshot(&[i % 3 == 0, i % 4 == 0, i % 5 == 0])
                .unwrap();
        }
        obs
    }

    #[test]
    fn listen_addresses_parse_and_display() {
        assert_eq!(
            ListenAddr::parse("127.0.0.1:9000"),
            ListenAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/nc.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/nc.sock"))
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:9000").to_string(),
            "tcp://127.0.0.1:9000"
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/nc.sock").to_string(),
            "unix:///tmp/nc.sock"
        );
    }

    #[test]
    fn tcp_session_end_to_end_with_in_band_shutdown() {
        let server = Server::bind(service(), &ListenAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let description = server.local_description();
        let addr = description.strip_prefix("tcp://").unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(&addr).unwrap();
        client.ping().unwrap();
        let obs = observations(30);
        let (ingested, total) = client.ingest(&obs).unwrap();
        assert_eq!((ingested, total), (30, 30));
        let infer = client.infer().unwrap();
        assert_eq!(infer.snapshots, 30);
        let probs = client.probabilities().unwrap();
        assert_eq!(probs.len(), 4);
        // A second client sees the same state (sessions share the service).
        let mut second = Client::connect_tcp(&addr).unwrap();
        assert_eq!(second.probabilities().unwrap(), probs);
        // An in-band error leaves both sessions usable.
        assert!(second.probability(99).is_err());
        second.ping().unwrap();

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_session_and_socket_file_cleanup() {
        let path =
            std::env::temp_dir().join(format!("netcorr-serve-test-{}.sock", std::process::id()));
        let addr = ListenAddr::Unix(path.clone());
        let server = Server::bind(service(), &addr).unwrap();
        assert_eq!(
            server.local_description(),
            format!("unix://{}", path.display())
        );
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect_unix(&path).unwrap();
        client.ingest(&observations(16)).unwrap();
        client.infer().unwrap();
        assert!(client.status().unwrap().inferred);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file should be removed on shutdown");
        // Binding over a stale socket file works (simulate a crash leftover).
        std::fs::write(&path, b"").unwrap();
        let server = Server::bind(service(), &addr).unwrap();
        server.shutdown_handle().store(true, Ordering::SeqCst);
        server.run().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn shutdown_handle_stops_an_idle_server() {
        let server = Server::bind(service(), &ListenAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }
}
