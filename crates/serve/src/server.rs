//! The socket front-end: accept loop, per-connection sessions, graceful
//! shutdown, and hostile-peer hardening.
//!
//! [`Server`] listens on TCP (`host:port`) or, on Unix platforms, a Unix
//! domain socket (`unix:/path`). Each accepted connection gets its own
//! handler thread reading request lines and writing single-line replies;
//! the [`TomographyService`] sits behind one mutex, so concurrent
//! sessions observe a serializable history of ingests and inferences.
//!
//! Shutdown is cooperative and **draining**: a `SHUTDOWN` request is
//! answered without taking the service lock (so it cannot queue behind a
//! slow ingest), the accept loop stops, and sessions with a request
//! already in flight get [`ServerConfig::drain_timeout`] to finish it —
//! an `OBS` block half-transferred when `SHUTDOWN` arrives is still
//! ingested, persisted and acked before the daemon exits. Idle sessions
//! close at the next poll tick.
//!
//! Hostile peers are bounded on every axis ([`ServerConfig`]): sessions
//! beyond `max_sessions` are shed with an `ERR busy` line, a request
//! that stops making progress for `request_timeout` (slow-loris) is
//! answered with an `ERR` and the session closed, a session idle beyond
//! `idle_timeout` is dropped, and a panicking request handler is caught
//! — the session replies `ERR internal` and the daemon keeps serving
//! (the service mutex is panic-tolerant). Chaos runs construct the
//! server over a seeded [`FaultPlan`], which wraps every accepted
//! session stream in a [`crate::faults::FaultyStream`];
//! [`FaultPlan::none`] (the default) is bit-invisible.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::faults::FaultPlan;
use crate::protocol::{self, Reply};
use crate::service::TomographyService;

/// How long the accept loop sleeps when no connection is pending; bounds
/// the shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on accepted connections. A session blocked waiting for
/// the next request wakes at this cadence to poll the shutdown flag, so
/// `SHUTDOWN` (or a flipped [`Server::shutdown_handle`]) can join every
/// session even while other clients sit idle on open connections.
const SESSION_READ_POLL: Duration = Duration::from_millis(100);

/// Per-session limits and fault injection for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further connections are shed with a
    /// single `ERR busy` line and closed.
    pub max_sessions: usize,
    /// A session with no request activity for this long is closed.
    pub idle_timeout: Duration,
    /// A request that stops making byte progress for this long — a
    /// half-sent line or a trickled `OBS` payload (slow-loris) — is
    /// answered with an `ERR` and the session closed.
    pub request_timeout: Duration,
    /// After `SHUTDOWN` is observed, how long an in-flight request may
    /// keep going before the session is abandoned; bounds how long a
    /// hostile stalled client can delay daemon exit.
    pub drain_timeout: Duration,
    /// Seeded fault injection wrapped around every accepted session
    /// stream ([`FaultPlan::none`] is bit-invisible).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(2),
            faults: FaultPlan::none(),
        }
    }
}

/// The per-session slice of the config, passed into session threads.
#[derive(Clone, Copy)]
struct SessionLimits {
    idle: Duration,
    request: Duration,
    drain: Duration,
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix domain socket path (Unix platforms only).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address argument: a `unix:` prefix selects a Unix
    /// domain socket, anything else is a TCP `host:port`.
    pub fn parse(arg: &str) -> ListenAddr {
        match arg.strip_prefix("unix:") {
            Some(path) => ListenAddr::Unix(PathBuf::from(path)),
            None => ListenAddr::Tcp(arg.to_string()),
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The daemon's socket server: one listener, one shared service, one
/// session thread per connection.
pub struct Server {
    listener: Listener,
    service: Arc<Mutex<TomographyService>>,
    shutdown: Arc<AtomicBool>,
    /// The Unix socket path to unlink once the server stops.
    unix_path: Option<PathBuf>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and wraps the service for concurrent sessions,
    /// with default [`ServerConfig`] limits and no fault injection.
    /// A stale Unix socket file from a previous run is replaced.
    pub fn bind(service: TomographyService, addr: &ListenAddr) -> std::io::Result<Server> {
        Self::bind_with(service, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit session limits / fault injection.
    pub fn bind_with(
        service: TomographyService,
        addr: &ListenAddr,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let (listener, unix_path) = match addr {
            ListenAddr::Tcp(tcp) => (Listener::Tcp(TcpListener::bind(tcp.as_str())?), None),
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // Binding fails with AddrInUse if the file exists, even
                // when no process listens on it; remove leftovers first.
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Some(path.clone()),
                )
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix domain sockets are not available on this platform",
                ))
            }
        };
        Ok(Server {
            listener,
            service: Arc::new(Mutex::new(service)),
            shutdown: Arc::new(AtomicBool::new(false)),
            unix_path,
            config,
        })
    }

    /// The bound address in `ListenAddr` display form — for TCP this is
    /// the **actual** address, so binding port 0 reports the ephemeral
    /// port a client should connect to.
    pub fn local_description(&self) -> String {
        match &self.listener {
            Listener::Tcp(listener) => match listener.local_addr() {
                Ok(addr) => format!("tcp://{addr}"),
                Err(_) => "tcp://<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(_) => match &self.unix_path {
                Some(path) => format!("unix://{}", path.display()),
                None => "unix://<unknown>".to_string(),
            },
        }
    }

    /// A handle that makes [`Server::run`] return when set to `true`
    /// (the in-band `SHUTDOWN` request sets the same flag).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until shutdown, then joins every session
    /// thread and removes the Unix socket file (if any).
    pub fn run(self) -> std::io::Result<()> {
        match &self.listener {
            Listener::Tcp(listener) => listener.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(listener) => listener.set_nonblocking(true)?,
        }
        let limits = SessionLimits {
            idle: self.config.idle_timeout,
            request: self.config.request_timeout,
            drain: self.config.drain_timeout,
        };
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Stream ids key each session's deterministic fault schedule.
        let mut next_stream_id: u64 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            // Reap finished sessions first: the connection cap counts
            // live sessions, and a long-lived daemon must not
            // accumulate handles.
            sessions.retain(|h| !h.is_finished());
            let at_capacity = sessions.len() >= self.config.max_sessions;
            let accepted = match &self.listener {
                Listener::Tcp(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        if at_capacity {
                            shed_busy(stream, self.config.max_sessions);
                            None
                        } else {
                            stream.set_read_timeout(Some(SESSION_READ_POLL))?;
                            let id = next_stream_id;
                            next_stream_id += 1;
                            Some(spawn_session(
                                self.config.faults.wrap(stream, id),
                                &self.service,
                                &self.shutdown,
                                limits,
                            ))
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        if at_capacity {
                            shed_busy(stream, self.config.max_sessions);
                            None
                        } else {
                            stream.set_read_timeout(Some(SESSION_READ_POLL))?;
                            let id = next_stream_id;
                            next_stream_id += 1;
                            Some(spawn_session(
                                self.config.faults.wrap(stream, id),
                                &self.service,
                                &self.shutdown,
                                limits,
                            ))
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(handle) => sessions.push(handle),
                None => std::thread::sleep(ACCEPT_POLL),
            }
        }
        for handle in sessions {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Writes the single `ERR busy` line to a connection over the session
/// cap and drops it. Best-effort: a peer that already vanished is
/// simply dropped.
fn shed_busy<S: Write>(mut stream: S, cap: usize) {
    let _ = writeln!(
        stream,
        "ERR busy: connection limit {cap} reached, retry later"
    );
    let _ = stream.flush();
}

fn spawn_session<S>(
    stream: S,
    service: &Arc<Mutex<TomographyService>>,
    shutdown: &Arc<AtomicBool>,
    limits: SessionLimits,
) -> std::thread::JoinHandle<()>
where
    S: std::io::Read + Write + Send + 'static,
{
    let service = Arc::clone(service);
    let shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || {
        // Session errors (a peer vanishing mid-request) just end the
        // session; the daemon itself keeps serving.
        let _ = run_session(stream, &service, &shutdown, limits);
    })
}

/// Whether a read error is the periodic read-timeout tick (reported as
/// `WouldBlock` on Unix, `TimedOut` on other platforms) rather than a
/// real failure.
fn is_read_poll(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A reader that retries the underlying stream's read-timeout ticks so a
/// framed `OBS` payload can span several ticks on a slow client — but
/// bounded: a body that stops making byte progress for the request
/// deadline fails with `TimedOut` (slow-loris), and once shutdown is
/// observed the remaining transfer gets only the drain window.
struct PolledReader<'a, R> {
    inner: &'a mut R,
    shutdown: &'a AtomicBool,
    /// Per-request stall bound; the deadline resets on every chunk of
    /// byte progress, so a slow-but-moving transfer is never aborted.
    request: Duration,
    deadline: Instant,
    /// How much longer a request already in flight may keep going after
    /// shutdown is observed.
    drain: Duration,
    drain_deadline: Option<Instant>,
    /// Set when a read failed on a deadline: the session should close
    /// after replying instead of trusting the stalled peer further.
    timed_out: bool,
}

impl<'a, R> PolledReader<'a, R> {
    fn new(inner: &'a mut R, shutdown: &'a AtomicBool, limits: SessionLimits) -> Self {
        PolledReader {
            inner,
            shutdown,
            request: limits.request,
            deadline: Instant::now() + limits.request,
            drain: limits.drain,
            drain_deadline: None,
            timed_out: false,
        }
    }
}

impl<R: std::io::Read> std::io::Read for PolledReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Ok(n) => {
                    if n > 0 {
                        self.deadline = Instant::now() + self.request;
                    }
                    return Ok(n);
                }
                Err(e) if is_read_poll(&e) => {
                    let now = Instant::now();
                    if self.shutdown.load(Ordering::SeqCst) {
                        let deadline = *self.drain_deadline.get_or_insert(now + self.drain);
                        if now >= deadline {
                            self.timed_out = true;
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "drain window elapsed with the request body still unsent",
                            ));
                        }
                    } else if now >= self.deadline {
                        self.timed_out = true;
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request body stalled past the request deadline",
                        ));
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Writes one reply line (text + `\n`) and flushes.
fn reply_line<W: Write>(stream: &mut W, text: &str) -> std::io::Result<()> {
    stream.write_all(text.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Serves one connection: read a request line, dispatch it against the
/// shared service (holding the lock across the OBS payload read, so a
/// block ingests atomically), write the single-line reply.
///
/// Exits on EOF, on a socket error, when idle past the idle deadline,
/// when a request line stalls past the request deadline (after an `ERR
/// timeout` reply), on shutdown (immediately while idle; after at most
/// the drain window for a request in flight, which still gets its
/// reply), or after replying to `SHUTDOWN`. A panicking request handler
/// is caught: the session replies `ERR internal` and the daemon keeps
/// serving.
fn run_session<S: std::io::Read + Write>(
    stream: S,
    service: &Mutex<TomographyService>,
    shutdown: &AtomicBool,
    limits: SessionLimits,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut idle_since = Instant::now();
    let mut line_progress = Instant::now();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // A timed-out read keeps any partial line accumulated so far and
        // polls the deadlines; a request already in flight still gets
        // its reply before the session exits.
        let len_before = line.len();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF: client closed the connection.
            Ok(_) => {}
            Err(e) if is_read_poll(&e) => {
                let now = Instant::now();
                if line.len() > len_before {
                    line_progress = now;
                }
                if shutdown.load(Ordering::SeqCst) {
                    if line.is_empty() {
                        return Ok(()); // Idle between requests: close now.
                    }
                    // A request line is mid-transfer: drain it, bounded.
                    let deadline = *drain_deadline.get_or_insert(now + limits.drain);
                    if now >= deadline {
                        return Ok(());
                    }
                } else if line.is_empty() {
                    if now.duration_since(idle_since) >= limits.idle {
                        return Ok(()); // Idle session: drop it.
                    }
                } else if now.duration_since(line_progress) >= limits.request {
                    // Slow-loris: a half-sent request line that stopped
                    // making progress. Tell the peer and hang up.
                    let _ = reply_line(
                        reader.get_mut(),
                        "ERR timeout: request line stalled past the request deadline",
                    );
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = line.trim_end_matches(['\r', '\n']);
        if request.trim().is_empty() {
            line.clear();
            idle_since = Instant::now();
            line_progress = idle_since;
            continue;
        }
        if request.trim() == "SHUTDOWN" {
            // Fast-path: answered without the service lock, so SHUTDOWN
            // cannot queue behind another session's slow ingest.
            shutdown.store(true, Ordering::SeqCst);
            return reply_line(reader.get_mut(), "OK bye");
        }
        let (reply, body_timed_out) = {
            // A panic in an earlier request poisons the mutex without
            // corrupting the service (a request either completes its
            // mutation or errors out first), so recover the guard
            // instead of propagating the poison to every later session.
            let mut service = service.lock().unwrap_or_else(PoisonError::into_inner);
            let mut body = PolledReader::new(&mut reader, shutdown, limits);
            let reply = catch_unwind(AssertUnwindSafe(|| {
                protocol::execute(&mut service, request, &mut body)
            }))
            .unwrap_or_else(|_| Reply {
                text: "ERR internal: request handler panicked (session isolated)".into(),
                shutdown: false,
            });
            (reply, body.timed_out)
        };
        line.clear();
        idle_since = Instant::now();
        line_progress = idle_since;
        reply_line(reader.get_mut(), &reply.text)?;
        if reply.shutdown {
            shutdown.store(true, Ordering::SeqCst);
            return Ok(());
        }
        if body_timed_out || shutdown.load(Ordering::SeqCst) {
            // Don't trust a stalled peer with another request; and once
            // shutdown is observed, the request just answered was this
            // session's last.
            return Ok(());
        }
    }
}

// Session streams the server accepts. (TcpStream/UnixStream already
// implement Read + Write + Send; nothing to add — this block just keeps
// the bound requirements in one visible place.)
#[allow(dead_code)]
fn _assert_session_streams() {
    fn assert_stream<S: std::io::Read + Write + Send + 'static>() {}
    assert_stream::<TcpStream>();
    #[cfg(unix)]
    assert_stream::<UnixStream>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::io::Read;

    use netcorr_core::AlgorithmConfig;
    use netcorr_measure::PathObservations;
    use netcorr_topology::toy;

    fn service() -> TomographyService {
        TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default()).unwrap()
    }

    fn observations(snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..snapshots {
            obs.record_snapshot(&[i % 3 == 0, i % 4 == 0, i % 5 == 0])
                .unwrap();
        }
        obs
    }

    #[test]
    fn listen_addresses_parse_and_display() {
        assert_eq!(
            ListenAddr::parse("127.0.0.1:9000"),
            ListenAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/nc.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/nc.sock"))
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:9000").to_string(),
            "tcp://127.0.0.1:9000"
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/nc.sock").to_string(),
            "unix:///tmp/nc.sock"
        );
    }

    #[test]
    fn tcp_session_end_to_end_with_in_band_shutdown() {
        let server = Server::bind(service(), &ListenAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let description = server.local_description();
        let addr = description.strip_prefix("tcp://").unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(&addr).unwrap();
        client.ping().unwrap();
        let obs = observations(30);
        let (ingested, total) = client.ingest(&obs).unwrap();
        assert_eq!((ingested, total), (30, 30));
        let infer = client.infer().unwrap();
        assert_eq!(infer.snapshots, 30);
        let probs = client.probabilities().unwrap();
        assert_eq!(probs.len(), 4);
        // A second client sees the same state (sessions share the service).
        let mut second = Client::connect_tcp(&addr).unwrap();
        assert_eq!(second.probabilities().unwrap(), probs);
        // An in-band error leaves both sessions usable.
        assert!(second.probability(99).is_err());
        second.ping().unwrap();

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_session_and_socket_file_cleanup() {
        let path =
            std::env::temp_dir().join(format!("netcorr-serve-test-{}.sock", std::process::id()));
        let addr = ListenAddr::Unix(path.clone());
        let server = Server::bind(service(), &addr).unwrap();
        assert_eq!(
            server.local_description(),
            format!("unix://{}", path.display())
        );
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect_unix(&path).unwrap();
        client.ingest(&observations(16)).unwrap();
        client.infer().unwrap();
        assert!(client.status().unwrap().inferred);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file should be removed on shutdown");
        // Binding over a stale socket file works (simulate a crash leftover).
        std::fs::write(&path, b"").unwrap();
        let server = Server::bind(service(), &addr).unwrap();
        server.shutdown_handle().store(true, Ordering::SeqCst);
        server.run().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn shutdown_handle_stops_an_idle_server() {
        let server = Server::bind(service(), &ListenAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }

    /// Binds a server with the given config and returns
    /// `(tcp address, shutdown flag, join handle)`.
    fn spawn_tcp(
        config: ServerConfig,
    ) -> (
        String,
        Arc<AtomicBool>,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let server =
            Server::bind_with(service(), &ListenAddr::Tcp("127.0.0.1:0".into()), config).unwrap();
        let description = server.local_description();
        let addr = description.strip_prefix("tcp://").unwrap().to_string();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        (addr, flag, handle)
    }

    #[test]
    fn connections_over_the_cap_are_shed_with_err_busy() {
        let config = ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        };
        let (addr, flag, handle) = spawn_tcp(config);

        let mut first = Client::connect_tcp(&addr).unwrap();
        first.ping().unwrap();
        // The second connection is over the cap: one ERR busy line, then
        // the server hangs up.
        let second = TcpStream::connect(&addr).unwrap();
        let mut line = String::new();
        BufReader::new(&second).read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR busy"), "got {line:?}");
        drop(second);
        // The session inside the cap is unaffected by the shed one.
        first.ping().unwrap();
        drop(first);
        // Closing it frees the slot (after the accept loop reaps the
        // finished session thread).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut retry = Client::connect_tcp(&addr).unwrap();
            if retry.ping().is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "shed slot never freed");
            std::thread::sleep(Duration::from_millis(10));
        }
        flag.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn a_panicking_request_is_isolated_to_its_session() {
        let (addr, _flag, handle) = spawn_tcp(ServerConfig::default());

        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(b"XPANIC\n").unwrap();
        raw.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&raw).read_line(&mut line).unwrap();
        assert!(
            line.starts_with("ERR internal: request handler panicked"),
            "got {line:?}"
        );
        drop(raw);

        // The daemon keeps serving, and the service state survived.
        let mut client = Client::connect_tcp(&addr).unwrap();
        client.ping().unwrap();
        client.ingest(&observations(12)).unwrap();
        assert_eq!(client.infer().unwrap().snapshots, 12);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_drains_an_obs_ingest_already_in_flight() {
        let (addr, _flag, handle) = spawn_tcp(ServerConfig::default());

        // Start an OBS upload but hold back the final bytes.
        let mut ingest = TcpStream::connect(&addr).unwrap();
        let framed = protocol::frame_observations(&observations(20));
        let split = framed.len() - 7;
        ingest.write_all(&framed[..split]).unwrap();
        ingest.flush().unwrap();
        // Give the session time to enter the body read, then shut the
        // daemon down from a second session.
        std::thread::sleep(Duration::from_millis(150));
        let mut other = Client::connect_tcp(&addr).unwrap();
        other.shutdown().unwrap();
        // The in-flight ingest still completes, is acked, and only then
        // does the daemon exit.
        std::thread::sleep(Duration::from_millis(50));
        ingest.write_all(&framed[split..]).unwrap();
        ingest.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&ingest).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK ingested=20 snapshots=20");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn idle_sessions_are_dropped_at_the_idle_deadline() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let (addr, flag, handle) = spawn_tcp(config);

        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // The server closes the idle session: the client reads EOF.
        let mut buf = [0u8; 1];
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
        flag.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }
}
