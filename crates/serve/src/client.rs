//! A small typed client for the daemon's wire protocol.
//!
//! [`Client`] wraps any bidirectional byte stream (TCP, Unix socket, or
//! an in-memory pipe in tests) and exposes one method per protocol
//! command, parsing the single-line replies back into numbers. Because
//! replies carry probabilities in Rust's shortest-round-trip `f64`
//! representation, the values a client parses are **bit-identical** to
//! the ones the service computed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use netcorr_measure::PathObservations;

use crate::protocol::frame_observations;
use crate::service::{HistoryStatus, ServiceStatus};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The socket failed (connect, read or write).
    Io(String),
    /// The server replied `ERR <message>`.
    Server(String),
    /// The server's reply did not match the protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "i/o error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "malformed reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// The parsed `INFER` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// Snapshots the estimate covers.
    pub snapshots: usize,
    /// The numerical path that produced it (`DenseExact`, `DenseL1`,
    /// `SparseIterative`).
    pub solver: String,
    /// Euclidean residual over the collected equations.
    pub residual: f64,
    /// Iterations spent by the iterative solver (0 for the direct paths).
    pub iterations: usize,
}

/// A protocol session over one connected stream.
pub struct Client<S: Read + Write> {
    stream: BufReader<S>,
}

impl Client<TcpStream> {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Client::new(TcpStream::connect(addr)?))
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a Unix domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Client::new(UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        Client {
            stream: BufReader::new(stream),
        }
    }

    /// Sends raw request bytes and reads the single-line reply, already
    /// split into `OK` payload or [`ClientError::Server`].
    fn exchange(&mut self, request: &[u8]) -> Result<String, ClientError> {
        let stream = self.stream.get_mut();
        stream.write_all(request)?;
        stream.flush()?;
        let mut reply = String::new();
        if self.stream.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        let reply = reply.trim_end_matches(['\r', '\n']);
        if let Some(payload) = reply.strip_prefix("OK") {
            Ok(payload.trim_start().to_string())
        } else if let Some(message) = reply.strip_prefix("ERR ") {
            Err(ClientError::Server(message.to_string()))
        } else {
            Err(ClientError::Protocol(format!(
                "reply is neither OK nor ERR: {reply:?}"
            )))
        }
    }

    fn command(&mut self, line: &str) -> Result<String, ClientError> {
        self.exchange(format!("{line}\n").as_bytes())
    }

    /// `PING` — liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let payload = self.command("PING")?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "unexpected PING payload {payload:?}"
            )))
        }
    }

    /// `OBS` — streams an observation block; returns
    /// `(snapshots ingested, total snapshots)`.
    pub fn ingest(
        &mut self,
        observations: &PathObservations,
    ) -> Result<(usize, usize), ClientError> {
        let payload = self.exchange(&frame_observations(observations))?;
        Ok((
            parse_field(&payload, "ingested")?,
            parse_field(&payload, "snapshots")?,
        ))
    }

    /// `OBS` with a pre-encoded (possibly malformed) payload, framed
    /// exactly like [`Client::ingest`] — lets tests and replay tools
    /// push raw v3 blocks without decoding them first. Returns
    /// `(snapshots ingested, total snapshots)`.
    pub fn ingest_raw_block(&mut self, block: &[u8]) -> Result<(usize, usize), ClientError> {
        let mut framed = format!("OBS {}\n", block.len()).into_bytes();
        framed.extend_from_slice(block);
        let payload = self.exchange(&framed)?;
        Ok((
            parse_field(&payload, "ingested")?,
            parse_field(&payload, "snapshots")?,
        ))
    }

    /// `INFER` — refreshes the server's estimate.
    pub fn infer(&mut self) -> Result<InferReply, ClientError> {
        let payload = self.command("INFER")?;
        Ok(InferReply {
            snapshots: parse_field(&payload, "snapshots")?,
            solver: text_field(&payload, "solver")?,
            residual: parse_field(&payload, "residual")?,
            iterations: parse_field(&payload, "iterations")?,
        })
    }

    /// `PROB` — one link's latest congestion probability.
    pub fn probability(&mut self, link: usize) -> Result<f64, ClientError> {
        let payload = self.command(&format!("PROB {link}"))?;
        payload
            .parse()
            .map_err(|_| ClientError::Protocol(format!("non-numeric probability {payload:?}")))
    }

    /// `PROBS` — every link's latest congestion probability.
    pub fn probabilities(&mut self) -> Result<Vec<f64>, ClientError> {
        let payload = self.command("PROBS")?;
        let mut words = payload.split(' ');
        let count: usize =
            words.next().unwrap_or("").parse().map_err(|_| {
                ClientError::Protocol(format!("missing PROBS count in {payload:?}"))
            })?;
        let probabilities = words
            .map(|w| {
                w.parse::<f64>().map_err(|_| {
                    ClientError::Protocol(format!("non-numeric probability {w:?} in PROBS"))
                })
            })
            .collect::<Result<Vec<f64>, ClientError>>()?;
        if probabilities.len() != count {
            return Err(ClientError::Protocol(format!(
                "PROBS declared {count} values but carried {}",
                probabilities.len()
            )));
        }
        Ok(probabilities)
    }

    /// `STATE` — congested / good verdict for a link; `threshold`
    /// defaults server-side to
    /// [`crate::protocol::DEFAULT_STATE_THRESHOLD`]. Returns
    /// `(congested, probability)`.
    pub fn link_state(
        &mut self,
        link: usize,
        threshold: Option<f64>,
    ) -> Result<(bool, f64), ClientError> {
        let line = match threshold {
            Some(t) => format!("STATE {link} {t}"),
            None => format!("STATE {link}"),
        };
        let payload = self.command(&line)?;
        Ok((
            text_field(&payload, "congested")? == "true",
            parse_field(&payload, "probability")?,
        ))
    }

    /// `STATUS` — the server's point-in-time summary.
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        let payload = self.command("STATUS")?;
        let solver = text_field(&payload, "solver")?;
        Ok(ServiceStatus {
            num_paths: parse_field(&payload, "paths")?,
            num_links: parse_field(&payload, "links")?,
            num_snapshots: parse_field(&payload, "snapshots")?,
            num_equations: parse_field(&payload, "equations")?,
            reinfers: parse_field(&payload, "reinfers")?,
            solver: match solver.as_str() {
                "DenseExact" => netcorr_core::SolverKind::DenseExact,
                "DenseL1" => netcorr_core::SolverKind::DenseL1,
                "SparseIterative" => netcorr_core::SolverKind::SparseIterative,
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unknown solver kind {other:?}"
                    )))
                }
            },
            inferred: text_field(&payload, "inferred")? == "true",
            kernel: text_field(&payload, "kernel")?,
            history: match text_field(&payload, "history")?.as_str() {
                "none" => None,
                spec => {
                    let (backing, path) = spec.split_once(':').ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "history field {spec:?} is not `backing:path`"
                        ))
                    })?;
                    Some(HistoryStatus {
                        path: path.to_string(),
                        backing: backing.to_string(),
                        snapshots: parse_field(&payload, "history_snapshots")?,
                        bytes: parse_field(&payload, "history_bytes")?,
                    })
                }
            },
        })
    }

    /// `SHUTDOWN` — asks the server to stop accepting connections and
    /// exit once in-flight sessions finish.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.command("SHUTDOWN").map(|_| ())
    }
}

/// Extracts `key=value` from a reply payload as text.
fn text_field(payload: &str, key: &str) -> Result<String, ClientError> {
    payload
        .split(' ')
        .find_map(|word| word.strip_prefix(key)?.strip_prefix('='))
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("missing field {key:?} in {payload:?}")))
}

/// Extracts and parses `key=value` from a reply payload.
fn parse_field<T: std::str::FromStr>(payload: &str, key: &str) -> Result<T, ClientError> {
    let value = text_field(payload, key)?;
    value
        .parse()
        .map_err(|_| ClientError::Protocol(format!("invalid value {value:?} for field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_fields_parse() {
        let payload = "paths=3 links=4 snapshots=60 reinfers=2 inferred=true";
        assert_eq!(parse_field::<usize>(payload, "links").unwrap(), 4);
        assert_eq!(text_field(payload, "inferred").unwrap(), "true");
        // `snapshots` must not match the prefix of another key.
        assert_eq!(parse_field::<usize>(payload, "snapshots").unwrap(), 60);
        assert!(text_field(payload, "absent").is_err());
        assert!(parse_field::<usize>(payload, "inferred").is_err());
    }

    #[test]
    fn history_fields_parse() {
        // `history` must not swallow `history_snapshots` / `history_bytes`
        // (the `=` requirement after the key prevents prefix matches).
        let payload =
            "kernel=avx512 history=mmap:/var/lib/netcorr/history.ncobs3 history_snapshots=57 \
             history_bytes=1464";
        assert_eq!(
            text_field(payload, "history").unwrap(),
            "mmap:/var/lib/netcorr/history.ncobs3"
        );
        assert_eq!(
            parse_field::<usize>(payload, "history_snapshots").unwrap(),
            57
        );
        assert_eq!(
            parse_field::<usize>(payload, "history_bytes").unwrap(),
            1464
        );
        assert_eq!(text_field(payload, "kernel").unwrap(), "avx512");
        let (backing, path) = text_field(payload, "history")
            .unwrap()
            .split_once(':')
            .map(|(b, p)| (b.to_string(), p.to_string()))
            .unwrap();
        assert_eq!(backing, "mmap");
        assert_eq!(path, "/var/lib/netcorr/history.ncobs3");
    }

    #[test]
    fn errors_display() {
        assert!(ClientError::Server("no estimate".into())
            .to_string()
            .contains("no estimate"));
        let e: ClientError = std::io::Error::other("refused").into();
        assert!(e.to_string().contains("refused"));
    }
}
