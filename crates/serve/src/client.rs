//! A small typed client for the daemon's wire protocol, hardened
//! against an unresponsive server.
//!
//! [`Client`] wraps any bidirectional byte stream (TCP, Unix socket, or
//! an in-memory pipe in tests) and exposes one method per protocol
//! command, parsing the single-line replies back into numbers. Because
//! replies carry probabilities in Rust's shortest-round-trip `f64`
//! representation, the values a client parses are **bit-identical** to
//! the ones the service computed.
//!
//! The socket constructors apply [`ClientConfig`] connect and read
//! timeouts, so a stalled listener (accepts, then never replies)
//! surfaces as [`ClientError::Timeout`] instead of hanging the caller
//! forever. A timed-out session should be discarded: the connection may
//! still carry a late reply to the abandoned request.
//!
//! [`ReconnectingClient`] adds deterministic bounded-exponential-backoff
//! reconnection on transport failures — but **only** for the idempotent
//! read-only requests (`PING`, `STATUS`, `PROB`, `PROBS`, `STATE`).
//! Ingests, inferences and `SHUTDOWN` are deliberately single-shot: a
//! lost `OBS` ack leaves the client unsure whether the block landed, and
//! blindly resending would double-count it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

use netcorr_measure::PathObservations;

use crate::protocol::frame_observations;
use crate::service::{HistoryStatus, ServiceStatus};

/// Timeouts and retry policy for socket clients.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// TCP connect timeout (Unix-socket connects are effectively local
    /// and not bounded separately).
    pub connect_timeout: Duration,
    /// Per-reply read timeout; an expired one is a
    /// [`ClientError::Timeout`].
    pub read_timeout: Duration,
    /// How many times a [`ReconnectingClient`] retries an idempotent
    /// request after the first attempt fails on a transport error.
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

/// The deterministic backoff before retry number `attempt` (0-based):
/// `backoff_base * 2^attempt`, saturating at `backoff_cap`. No jitter —
/// chaos runs must replay bit-identically.
pub fn backoff_delay(config: &ClientConfig, attempt: u32) -> Duration {
    let factor = 2u32.saturating_pow(attempt);
    config
        .backoff_base
        .saturating_mul(factor)
        .min(config.backoff_cap)
}

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The socket failed (connect, read or write).
    Io(String),
    /// The server accepted but did not reply within the read timeout.
    Timeout(String),
    /// The server replied `ERR <message>`.
    Server(String),
    /// The server's reply did not match the protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "i/o error: {msg}"),
            ClientError::Timeout(msg) => write!(f, "timed out: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "malformed reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ClientError::Timeout(e.to_string())
            }
            _ => ClientError::Io(e.to_string()),
        }
    }
}

impl ClientError {
    /// Whether this failure broke (or may have broken) the transport, so
    /// the session should be re-established before another request.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Timeout(_))
    }
}

/// The parsed `INFER` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// Snapshots the estimate covers.
    pub snapshots: usize,
    /// The numerical path that produced it (`DenseExact`, `DenseL1`,
    /// `SparseIterative`).
    pub solver: String,
    /// Euclidean residual over the collected equations.
    pub residual: f64,
    /// Iterations spent by the iterative solver (0 for the direct paths).
    pub iterations: usize,
    /// Whether the server is serving a degraded (stale) estimate — the
    /// refresh failed or did not converge and the last good estimate is
    /// being served instead.
    pub stale: bool,
}

/// A protocol session over one connected stream.
pub struct Client<S: Read + Write> {
    stream: BufReader<S>,
}

/// Dials `addr` with the config's connect timeout (trying each resolved
/// address) and applies the read timeout to the connected stream.
fn connect_tcp_stream(
    addr: impl ToSocketAddrs,
    config: &ClientConfig,
) -> std::io::Result<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, config.connect_timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(config.read_timeout))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to no socket addresses",
        )
    }))
}

impl Client<TcpStream> {
    /// Connects over TCP (`host:port`) with default [`ClientConfig`]
    /// connect/read timeouts.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_tcp_with(addr, &ClientConfig::default())
    }

    /// [`Client::connect_tcp`] with explicit timeouts.
    pub fn connect_tcp_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> std::io::Result<Self> {
        Ok(Client::new(connect_tcp_stream(addr, config)?))
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a Unix domain socket with default [`ClientConfig`]
    /// read timeout.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::connect_unix_with(path, &ClientConfig::default())
    }

    /// [`Client::connect_unix`] with explicit timeouts.
    pub fn connect_unix_with(
        path: impl AsRef<Path>,
        config: &ClientConfig,
    ) -> std::io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        Ok(Client::new(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        Client {
            stream: BufReader::new(stream),
        }
    }

    /// Sends raw request bytes and reads the single-line reply, already
    /// split into `OK` payload or [`ClientError::Server`].
    fn exchange(&mut self, request: &[u8]) -> Result<String, ClientError> {
        let stream = self.stream.get_mut();
        stream.write_all(request)?;
        stream.flush()?;
        let mut reply = String::new();
        if self.stream.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        let reply = reply.trim_end_matches(['\r', '\n']);
        if let Some(payload) = reply.strip_prefix("OK") {
            Ok(payload.trim_start().to_string())
        } else if let Some(message) = reply.strip_prefix("ERR ") {
            Err(ClientError::Server(message.to_string()))
        } else {
            Err(ClientError::Protocol(format!(
                "reply is neither OK nor ERR: {reply:?}"
            )))
        }
    }

    fn command(&mut self, line: &str) -> Result<String, ClientError> {
        self.exchange(format!("{line}\n").as_bytes())
    }

    /// `PING` — liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let payload = self.command("PING")?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "unexpected PING payload {payload:?}"
            )))
        }
    }

    /// `OBS` — streams an observation block; returns
    /// `(snapshots ingested, total snapshots)`.
    pub fn ingest(
        &mut self,
        observations: &PathObservations,
    ) -> Result<(usize, usize), ClientError> {
        let payload = self.exchange(&frame_observations(observations))?;
        Ok((
            parse_field(&payload, "ingested")?,
            parse_field(&payload, "snapshots")?,
        ))
    }

    /// `OBS` with a pre-encoded (possibly malformed) payload, framed
    /// exactly like [`Client::ingest`] — lets tests and replay tools
    /// push raw v3 blocks without decoding them first. Returns
    /// `(snapshots ingested, total snapshots)`.
    pub fn ingest_raw_block(&mut self, block: &[u8]) -> Result<(usize, usize), ClientError> {
        let mut framed = format!("OBS {}\n", block.len()).into_bytes();
        framed.extend_from_slice(block);
        let payload = self.exchange(&framed)?;
        Ok((
            parse_field(&payload, "ingested")?,
            parse_field(&payload, "snapshots")?,
        ))
    }

    /// `INFER` — refreshes the server's estimate.
    pub fn infer(&mut self) -> Result<InferReply, ClientError> {
        let payload = self.command("INFER")?;
        Ok(InferReply {
            snapshots: parse_field(&payload, "snapshots")?,
            solver: text_field(&payload, "solver")?,
            residual: parse_field(&payload, "residual")?,
            iterations: parse_field(&payload, "iterations")?,
            stale: parse_field(&payload, "stale")?,
        })
    }

    /// `PROB` — one link's latest congestion probability.
    pub fn probability(&mut self, link: usize) -> Result<f64, ClientError> {
        let payload = self.command(&format!("PROB {link}"))?;
        payload
            .parse()
            .map_err(|_| ClientError::Protocol(format!("non-numeric probability {payload:?}")))
    }

    /// `PROBS` — every link's latest congestion probability, discarding
    /// the stale flag (see [`Client::probabilities_flagged`]).
    pub fn probabilities(&mut self) -> Result<Vec<f64>, ClientError> {
        Ok(self.probabilities_flagged()?.1)
    }

    /// `PROBS` — every link's latest congestion probability, plus
    /// whether the server flagged the estimate as stale (degraded
    /// serving after a failed or non-converged refresh).
    pub fn probabilities_flagged(&mut self) -> Result<(bool, Vec<f64>), ClientError> {
        let payload = self.command("PROBS")?;
        let mut words = payload.split(' ');
        let stale = match words.next() {
            Some("stale=true") => true,
            Some("stale=false") => false,
            _ => {
                return Err(ClientError::Protocol(format!(
                    "missing PROBS stale flag in {payload:?}"
                )))
            }
        };
        let count: usize =
            words.next().unwrap_or("").parse().map_err(|_| {
                ClientError::Protocol(format!("missing PROBS count in {payload:?}"))
            })?;
        let probabilities = words
            .map(|w| {
                w.parse::<f64>().map_err(|_| {
                    ClientError::Protocol(format!("non-numeric probability {w:?} in PROBS"))
                })
            })
            .collect::<Result<Vec<f64>, ClientError>>()?;
        if probabilities.len() != count {
            return Err(ClientError::Protocol(format!(
                "PROBS declared {count} values but carried {}",
                probabilities.len()
            )));
        }
        Ok((stale, probabilities))
    }

    /// `STATE` — congested / good verdict for a link; `threshold`
    /// defaults server-side to
    /// [`crate::protocol::DEFAULT_STATE_THRESHOLD`]. Returns
    /// `(congested, probability)`.
    pub fn link_state(
        &mut self,
        link: usize,
        threshold: Option<f64>,
    ) -> Result<(bool, f64), ClientError> {
        let line = match threshold {
            Some(t) => format!("STATE {link} {t}"),
            None => format!("STATE {link}"),
        };
        let payload = self.command(&line)?;
        Ok((
            text_field(&payload, "congested")? == "true",
            parse_field(&payload, "probability")?,
        ))
    }

    /// `STATUS` — the server's point-in-time summary.
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        let payload = self.command("STATUS")?;
        let solver = text_field(&payload, "solver")?;
        Ok(ServiceStatus {
            num_paths: parse_field(&payload, "paths")?,
            num_links: parse_field(&payload, "links")?,
            num_snapshots: parse_field(&payload, "snapshots")?,
            num_equations: parse_field(&payload, "equations")?,
            reinfers: parse_field(&payload, "reinfers")?,
            solver: match solver.as_str() {
                "DenseExact" => netcorr_core::SolverKind::DenseExact,
                "DenseL1" => netcorr_core::SolverKind::DenseL1,
                "SparseIterative" => netcorr_core::SolverKind::SparseIterative,
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unknown solver kind {other:?}"
                    )))
                }
            },
            inferred: text_field(&payload, "inferred")? == "true",
            stale: parse_field(&payload, "stale")?,
            kernel: text_field(&payload, "kernel")?,
            history: match text_field(&payload, "history")?.as_str() {
                "none" => None,
                spec => {
                    let (backing, path) = spec.split_once(':').ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "history field {spec:?} is not `backing:path`"
                        ))
                    })?;
                    Some(HistoryStatus {
                        path: path.to_string(),
                        backing: backing.to_string(),
                        snapshots: parse_field(&payload, "history_snapshots")?,
                        bytes: parse_field(&payload, "history_bytes")?,
                        generation: parse_field(&payload, "history_generation")?,
                        recovered: parse_field(&payload, "history_recovered")?,
                    })
                }
            },
        })
    }

    /// `SHUTDOWN` — asks the server to stop accepting connections and
    /// exit once in-flight sessions finish.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.command("SHUTDOWN").map(|_| ())
    }
}

/// How a [`ReconnectingClient`] (re-)establishes its transport.
pub trait Connector {
    /// The connected stream type.
    type Stream: Read + Write;
    /// Opens a fresh connection.
    fn connect(&self) -> Result<Self::Stream, ClientError>;
}

/// Dials a TCP daemon with [`ClientConfig`] connect/read timeouts on
/// every (re-)connect.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    /// The daemon's `host:port`.
    pub addr: String,
    /// Timeouts applied to every dial.
    pub config: ClientConfig,
}

impl Connector for TcpConnector {
    type Stream = TcpStream;
    fn connect(&self) -> Result<TcpStream, ClientError> {
        Ok(connect_tcp_stream(self.addr.as_str(), &self.config)?)
    }
}

/// A client that survives daemon restarts and mid-request disconnects:
/// transport failures (`Io`/`Timeout`) on **idempotent read-only**
/// requests are retried over a fresh connection after a deterministic
/// bounded exponential backoff ([`backoff_delay`]).
///
/// Mutating or at-most-once requests — `OBS` ingests, `INFER`,
/// `SHUTDOWN` — are **never retried**: a transport error still tears
/// the session down (the next request reconnects), but the error is
/// surfaced to the caller, who alone knows whether resending is safe.
pub struct ReconnectingClient<C: Connector> {
    connector: C,
    config: ClientConfig,
    session: Option<Client<C::Stream>>,
}

impl ReconnectingClient<TcpConnector> {
    /// A reconnecting client for a TCP daemon at `addr`.
    pub fn tcp(addr: &str, config: ClientConfig) -> Self {
        ReconnectingClient::new(
            TcpConnector {
                addr: addr.to_string(),
                config: config.clone(),
            },
            config,
        )
    }
}

impl<C: Connector> ReconnectingClient<C> {
    /// Wraps a connector; no connection is opened until the first
    /// request.
    pub fn new(connector: C, config: ClientConfig) -> Self {
        ReconnectingClient {
            connector,
            config,
            session: None,
        }
    }

    /// The live session, (re-)connecting if necessary.
    fn session(&mut self) -> Result<&mut Client<C::Stream>, ClientError> {
        if self.session.is_none() {
            self.session = Some(Client::new(self.connector.connect()?));
        }
        Ok(self.session.as_mut().expect("session was just established"))
    }

    /// Runs an idempotent request with reconnect-and-retry on transport
    /// failures. Server `ERR` replies and protocol violations are
    /// returned immediately — the transport is fine, retrying cannot
    /// change the answer.
    fn retry<T>(
        &mut self,
        op: impl Fn(&mut Client<C::Stream>) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(&self.config, attempt - 1));
            }
            match self.session() {
                Ok(client) => match op(client) {
                    Ok(value) => return Ok(value),
                    Err(e) if e.is_transport() => {
                        self.session = None;
                        last = Some(e);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    self.session = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Io("no connection attempts made".into())))
    }

    /// Runs a request exactly once; a transport failure tears the
    /// session down (so the next request reconnects) but is surfaced,
    /// never retried.
    fn single_shot<T>(
        &mut self,
        op: impl FnOnce(&mut Client<C::Stream>) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let result = op(self.session()?);
        if matches!(&result, Err(e) if e.is_transport()) {
            self.session = None;
        }
        result
    }

    /// `PING`, with reconnect-and-retry.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.retry(|c| c.ping())
    }

    /// `STATUS`, with reconnect-and-retry.
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        self.retry(|c| c.status())
    }

    /// `PROB <link>`, with reconnect-and-retry.
    pub fn probability(&mut self, link: usize) -> Result<f64, ClientError> {
        self.retry(|c| c.probability(link))
    }

    /// `PROBS`, with reconnect-and-retry.
    pub fn probabilities(&mut self) -> Result<Vec<f64>, ClientError> {
        self.retry(|c| c.probabilities())
    }

    /// `PROBS` with the stale flag, with reconnect-and-retry.
    pub fn probabilities_flagged(&mut self) -> Result<(bool, Vec<f64>), ClientError> {
        self.retry(|c| c.probabilities_flagged())
    }

    /// `STATE <link> [threshold]`, with reconnect-and-retry.
    pub fn link_state(
        &mut self,
        link: usize,
        threshold: Option<f64>,
    ) -> Result<(bool, f64), ClientError> {
        self.retry(|c| c.link_state(link, threshold))
    }

    /// `OBS` ingest — **single-shot** (not idempotent: a lost ack could
    /// double-count the block if resent blindly).
    pub fn ingest(
        &mut self,
        observations: &PathObservations,
    ) -> Result<(usize, usize), ClientError> {
        self.single_shot(|c| c.ingest(observations))
    }

    /// `INFER` — single-shot (it mutates server state and its cost is
    /// not the client's to multiply on a flaky link).
    pub fn infer(&mut self) -> Result<InferReply, ClientError> {
        self.single_shot(|c| c.infer())
    }

    /// `SHUTDOWN` — single-shot (retrying against a daemon that is
    /// already exiting would only manufacture spurious errors).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.single_shot(|c| c.shutdown())
    }
}

/// Extracts `key=value` from a reply payload as text.
fn text_field(payload: &str, key: &str) -> Result<String, ClientError> {
    payload
        .split(' ')
        .find_map(|word| word.strip_prefix(key)?.strip_prefix('='))
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("missing field {key:?} in {payload:?}")))
}

/// Extracts and parses `key=value` from a reply payload.
fn parse_field<T: std::str::FromStr>(payload: &str, key: &str) -> Result<T, ClientError> {
    let value = text_field(payload, key)?;
    value
        .parse()
        .map_err(|_| ClientError::Protocol(format!("invalid value {value:?} for field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_fields_parse() {
        let payload = "paths=3 links=4 snapshots=60 reinfers=2 inferred=true";
        assert_eq!(parse_field::<usize>(payload, "links").unwrap(), 4);
        assert_eq!(text_field(payload, "inferred").unwrap(), "true");
        // `snapshots` must not match the prefix of another key.
        assert_eq!(parse_field::<usize>(payload, "snapshots").unwrap(), 60);
        assert!(text_field(payload, "absent").is_err());
        assert!(parse_field::<usize>(payload, "inferred").is_err());
    }

    #[test]
    fn history_fields_parse() {
        // `history` must not swallow `history_snapshots` / `history_bytes`
        // (the `=` requirement after the key prevents prefix matches).
        let payload =
            "kernel=avx512 history=mmap:/var/lib/netcorr/history.ncobs3 history_snapshots=57 \
             history_bytes=1464";
        assert_eq!(
            text_field(payload, "history").unwrap(),
            "mmap:/var/lib/netcorr/history.ncobs3"
        );
        assert_eq!(
            parse_field::<usize>(payload, "history_snapshots").unwrap(),
            57
        );
        assert_eq!(
            parse_field::<usize>(payload, "history_bytes").unwrap(),
            1464
        );
        assert_eq!(text_field(payload, "kernel").unwrap(), "avx512");
        let (backing, path) = text_field(payload, "history")
            .unwrap()
            .split_once(':')
            .map(|(b, p)| (b.to_string(), p.to_string()))
            .unwrap();
        assert_eq!(backing, "mmap");
        assert_eq!(path, "/var/lib/netcorr/history.ncobs3");
    }

    #[test]
    fn errors_display() {
        assert!(ClientError::Server("no estimate".into())
            .to_string()
            .contains("no estimate"));
        let e: ClientError = std::io::Error::other("refused").into();
        assert!(e.to_string().contains("refused"));
        // Timed-out socket reads become the dedicated Timeout variant.
        let e: ClientError =
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "resource busy").into();
        assert!(matches!(e, ClientError::Timeout(_)));
        assert!(e.is_transport());
        assert!(!ClientError::Server("x".into()).is_transport());
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            ..ClientConfig::default()
        };
        let delays: Vec<Duration> = (0..8).map(|a| backoff_delay(&config, a)).collect();
        assert_eq!(delays[0], Duration::from_millis(25));
        assert_eq!(delays[1], Duration::from_millis(50));
        assert_eq!(delays[2], Duration::from_millis(100));
        assert_eq!(delays[5], Duration::from_millis(800));
        assert_eq!(delays[6], Duration::from_secs(1), "capped");
        assert_eq!(delays[7], Duration::from_secs(1));
        // Bit-reproducible: the same inputs give the same schedule.
        assert_eq!(
            delays,
            (0..8)
                .map(|a| backoff_delay(&config, a))
                .collect::<Vec<_>>()
        );
    }

    /// Regression test: a listener that accepts and then never replies
    /// must surface as `Timeout`, not hang the caller forever.
    #[test]
    fn stalled_listener_times_out_instead_of_hanging() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            // Accept, then hold the connection open without ever writing.
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let config = ClientConfig {
            read_timeout: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let mut client = Client::connect_tcp_with(addr, &config).unwrap();
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Timeout(_)), "got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "the timeout must fire well before the stall ends"
        );
        stall.join().unwrap();
    }

    /// An in-memory stream that replays scripted reply bytes and
    /// swallows writes.
    struct ScriptStream {
        input: std::io::Cursor<Vec<u8>>,
    }

    impl Read for ScriptStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for ScriptStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Hands out scripted streams in order and counts dials.
    struct ScriptConnector {
        streams: std::sync::Mutex<std::collections::VecDeque<Vec<u8>>>,
        dials: std::sync::atomic::AtomicU32,
    }

    impl ScriptConnector {
        fn new(replies: &[&[u8]]) -> std::sync::Arc<Self> {
            std::sync::Arc::new(ScriptConnector {
                streams: std::sync::Mutex::new(replies.iter().map(|r| r.to_vec()).collect()),
                dials: std::sync::atomic::AtomicU32::new(0),
            })
        }
        fn dials(&self) -> u32 {
            self.dials.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl Connector for std::sync::Arc<ScriptConnector> {
        type Stream = ScriptStream;
        fn connect(&self) -> Result<ScriptStream, ClientError> {
            self.dials.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let bytes = self
                .streams
                .lock()
                .unwrap()
                .pop_front()
                .ok_or_else(|| ClientError::Io("no more scripted connections".into()))?;
            Ok(ScriptStream {
                input: std::io::Cursor::new(bytes),
            })
        }
    }

    fn fast_config() -> ClientConfig {
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn reconnecting_client_retries_idempotent_requests() {
        // First connection dies instantly (EOF before any reply), the
        // second serves the reply: PING succeeds over the reconnect.
        let connector = ScriptConnector::new(&[b"", b"OK pong\n"]);
        let mut client = ReconnectingClient::new(std::sync::Arc::clone(&connector), fast_config());
        client.ping().unwrap();
        assert_eq!(connector.dials(), 2);
        // A server ERR is not transport trouble: no retry, no reconnect.
        let connector = ScriptConnector::new(&[b"ERR no estimate available\n"]);
        let mut client = ReconnectingClient::new(std::sync::Arc::clone(&connector), fast_config());
        let err = client.probability(0).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "got {err:?}");
        assert_eq!(connector.dials(), 1);
        // Retries are bounded: retries=3 means at most 4 dials.
        let connector = ScriptConnector::new(&[b"", b"", b"", b"", b"", b""]);
        let mut client = ReconnectingClient::new(std::sync::Arc::clone(&connector), fast_config());
        assert!(client.ping().is_err());
        assert_eq!(connector.dials(), 4);
    }

    #[test]
    fn reconnecting_client_never_retries_mutating_requests() {
        // INFER against a dead connection: surfaced after ONE dial.
        let connector = ScriptConnector::new(&[b"", b"OK pong\n"]);
        let mut client = ReconnectingClient::new(std::sync::Arc::clone(&connector), fast_config());
        let err = client.infer().unwrap_err();
        assert!(err.is_transport(), "got {err:?}");
        assert_eq!(connector.dials(), 1, "mutating requests must not retry");
        // But the torn session was dropped: the next (idempotent)
        // request dials fresh and succeeds.
        client.ping().unwrap();
        assert_eq!(connector.dials(), 2);
    }
}
