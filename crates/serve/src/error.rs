//! Error type for the online tomography daemon.

use std::fmt;

use netcorr_core::CoreError;
use netcorr_eval::EvalError;
use netcorr_measure::MeasureError;

/// Errors produced by the daemon's service, protocol and server layers.
///
/// Every variant renders to a single human-readable line, because the
/// wire protocol reports failures as one `ERR <message>` reply per
/// request (the connection stays open; one bad request never takes the
/// session down).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An inference problem (context construction, RHS refresh, solve).
    Inference(CoreError),
    /// A measurement problem (snapshot ingest, estimator queries).
    Measurement(MeasureError),
    /// An ingested observation block covers a different number of paths
    /// than the topology the daemon was started with.
    PathMismatch {
        /// Paths in the ingested block.
        block: usize,
        /// Paths in the daemon's topology.
        instance: usize,
    },
    /// A query referenced a link outside the topology.
    UnknownLink {
        /// The requested link index.
        link: usize,
        /// Number of links in the topology.
        num_links: usize,
    },
    /// A probability/state query arrived before any `INFER` produced an
    /// estimate.
    NoEstimate,
    /// A request line (or framed body) violated the wire protocol.
    Protocol(String),
    /// A history-file problem: mapping the persisted observation history
    /// on startup, or atomically rewriting it after an ingest.
    Persist(String),
    /// An I/O problem on the socket.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Inference(e) => write!(f, "inference error: {e}"),
            ServeError::Measurement(e) => write!(f, "measurement error: {e}"),
            ServeError::PathMismatch { block, instance } => write!(
                f,
                "observation block covers {block} paths, topology has {instance}"
            ),
            ServeError::UnknownLink { link, num_links } => {
                write!(f, "unknown link {link} (topology has {num_links} links)")
            }
            ServeError::NoEstimate => {
                write!(
                    f,
                    "no estimate yet: ingest observations and run INFER first"
                )
            }
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Persist(msg) => write!(f, "history persistence error: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Inference(e)
    }
}

impl From<MeasureError> for ServeError {
    fn from(e: MeasureError) -> Self {
        ServeError::Measurement(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> Self {
        ServeError::Persist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ServeError = CoreError::NoUsableEquations.into();
        assert!(e.to_string().contains("inference"));
        let e: ServeError = MeasureError::NoSnapshots.into();
        assert!(matches!(e, ServeError::Measurement(_)));
        let e: ServeError = std::io::Error::other("peer hung up").into();
        assert!(e.to_string().contains("peer hung up"));
        let e = ServeError::PathMismatch {
            block: 7,
            instance: 3,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = ServeError::UnknownLink {
            link: 9,
            num_links: 4,
        };
        assert!(e.to_string().contains("unknown link 9"));
        assert!(ServeError::NoEstimate.to_string().contains("INFER"));
        assert!(ServeError::Protocol("bad verb".into())
            .to_string()
            .contains("bad verb"));
        let e: ServeError = EvalError::Persist {
            path: "history.ncobs3".into(),
            cause: "disk full".into(),
        }
        .into();
        assert!(matches!(e, ServeError::Persist(_)));
        assert!(e.to_string().contains("disk full"), "{e}");
    }
}
