//! The daemon's line-oriented wire protocol.
//!
//! Requests are single ASCII lines terminated by `\n`; the one command
//! with a payload (`OBS`) declares its byte length on the request line
//! and sends the raw v3 wire-format observation block (see
//! [`PathObservations::to_binary`]) immediately after the newline:
//!
//! ```text
//! PING                      → OK pong
//! STATUS                    → OK paths=3 links=4 snapshots=60 equations=6 reinfers=2 solver=DenseExact inferred=true stale=false kernel=avx512 history=none
//! OBS <len>\n<len raw bytes> → OK ingested=25 snapshots=60
//! INFER                     → OK snapshots=60 solver=DenseExact residual=0.0000000019 iterations=0 stale=false
//! PROB <link>               → OK 0.24719056413242677
//! PROBS                     → OK stale=false 4 0.247… 0.103… 0.0 0.201…
//! STATE <link> [threshold]  → OK congested=false probability=0.247… threshold=0.5
//! SHUTDOWN                  → OK bye
//! ```
//!
//! With `--history` enabled, `STATUS` reports the persistence state as
//! `history=backing:path history_snapshots=… history_bytes=…
//! history_generation=… history_recovered=…` — the generation counts
//! acked history writes, and `history_recovered=true` flags that startup
//! recovered from a torn or missing history file (see
//! [`netcorr_eval::persist::recover_history`]).
//!
//! Every reply is a single line: `OK …` on success, `ERR <message>` on
//! failure. Errors are **per request** — a malformed line or a failed
//! query produces an `ERR` reply and the connection stays open.
//! Probabilities travel as Rust's shortest-round-trip `f64` decimal
//! representation, which parses back to the identical bits: the text
//! protocol does not cost bit-exactness.
//!
//! **Graceful degradation.** When re-inference fails outright, or the
//! sparse CGLS solve exhausts its iteration budget, the daemon keeps
//! serving the last good estimate and flags it: `INFER`, `PROBS` and
//! `STATUS` report `stale=true` until a later `INFER` succeeds within
//! budget. `PROB` and `STATE` reply shapes are unchanged; consult
//! `STATUS` for staleness.
//!
//! [`execute`] dispatches one request line against a
//! [`TomographyService`]; the socket server and the in-process
//! benchmarks share it, so what is measured is exactly what is served.

use std::io::Read;

use netcorr_measure::PathObservations;

use crate::error::ServeError;
use crate::service::TomographyService;

/// The default congestion threshold for `STATE` queries without an
/// explicit one: a link is reported congested when its congestion
/// probability exceeds this.
pub const DEFAULT_STATE_THRESHOLD: f64 = 0.5;

/// Hard cap on an `OBS` payload length (bytes), so a corrupt or hostile
/// length field cannot make the server try to buffer gigabytes.
pub const MAX_OBS_BYTES: usize = 256 * 1024 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `PING` — liveness check.
    Ping,
    /// `STATUS` — service summary.
    Status,
    /// `OBS <len>` — ingest a v3 observation block of `len` raw bytes.
    Obs {
        /// Payload length in bytes.
        len: usize,
    },
    /// `INFER` — refresh the estimate from everything ingested so far.
    Infer,
    /// `PROB <link>` — one link's congestion probability.
    Prob {
        /// Link index.
        link: usize,
    },
    /// `PROBS` — every link's congestion probability.
    Probs,
    /// `STATE <link> [threshold]` — congested / good verdict for a link.
    State {
        /// Link index.
        link: usize,
        /// Decision threshold (defaults to [`DEFAULT_STATE_THRESHOLD`]).
        threshold: Option<f64>,
    },
    /// `SHUTDOWN` — stop accepting connections and exit gracefully.
    Shutdown,
}

impl Request {
    /// Parses one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let mut words = line.split_whitespace();
        let verb = words
            .next()
            .ok_or_else(|| ServeError::Protocol("empty request".into()))?;
        let request = match verb {
            "PING" => Request::Ping,
            "STATUS" => Request::Status,
            "OBS" => {
                let len = parse_field::<usize>(words.next(), "OBS", "length")?;
                if len > MAX_OBS_BYTES {
                    return Err(ServeError::Protocol(format!(
                        "OBS length {len} exceeds the {MAX_OBS_BYTES}-byte cap"
                    )));
                }
                Request::Obs { len }
            }
            "INFER" => Request::Infer,
            "PROB" => Request::Prob {
                link: parse_field::<usize>(words.next(), "PROB", "link")?,
            },
            "PROBS" => Request::Probs,
            "STATE" => {
                let link = parse_field::<usize>(words.next(), "STATE", "link")?;
                let threshold = match words.next() {
                    None => None,
                    some => Some(parse_field::<f64>(some, "STATE", "threshold")?),
                };
                Request::State { link, threshold }
            }
            "SHUTDOWN" => Request::Shutdown,
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown command '{other}' (expected PING, STATUS, OBS, INFER, PROB, PROBS, STATE or SHUTDOWN)"
                )))
            }
        };
        if let Some(extra) = words.next() {
            return Err(ServeError::Protocol(format!(
                "unexpected trailing argument '{extra}' after {verb}"
            )));
        }
        Ok(request)
    }
}

fn parse_field<T: std::str::FromStr>(
    word: Option<&str>,
    verb: &str,
    what: &str,
) -> Result<T, ServeError> {
    let word =
        word.ok_or_else(|| ServeError::Protocol(format!("{verb} is missing its {what} argument")))?;
    word.parse::<T>()
        .map_err(|_| ServeError::Protocol(format!("invalid {what} '{word}' for {verb}")))
}

/// The outcome of dispatching one request: the single-line reply text
/// (no trailing newline) and whether the server should shut down after
/// sending it.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The reply line (`OK …` or `ERR <message>`).
    pub text: String,
    /// Whether this request asked the server to stop.
    pub shutdown: bool,
}

impl Reply {
    fn ok(text: String) -> Reply {
        Reply {
            text: format!("OK {text}"),
            shutdown: false,
        }
    }
}

/// Renders an error as its single-line `ERR` reply (newlines in the
/// message collapse to `; ` so framing survives).
pub fn error_reply(error: &ServeError) -> Reply {
    Reply {
        text: format!("ERR {}", error.to_string().replace('\n', "; ")),
        shutdown: false,
    }
}

/// Dispatches one request line against the service, pulling an `OBS`
/// payload from `body` when the request declares one. Returns the reply
/// to send back; every service error becomes an `ERR` reply, never a
/// connection drop.
pub fn execute(service: &mut TomographyService, line: &str, body: &mut impl Read) -> Reply {
    match try_execute(service, line, body) {
        Ok(reply) => reply,
        Err(error) => error_reply(&error),
    }
}

fn try_execute(
    service: &mut TomographyService,
    line: &str,
    body: &mut impl Read,
) -> Result<Reply, ServeError> {
    // Test hook for the session-isolation path: a deliberate panic that
    // exists only in this crate's own test builds.
    #[cfg(test)]
    if line.trim() == "XPANIC" {
        panic!("injected panic for session-isolation tests");
    }
    match Request::parse(line)? {
        Request::Ping => Ok(Reply::ok("pong".into())),
        Request::Status => {
            let s = service.status();
            let mut text = format!(
                "paths={} links={} snapshots={} equations={} reinfers={} solver={:?} inferred={} stale={} kernel={}",
                s.num_paths,
                s.num_links,
                s.num_snapshots,
                s.num_equations,
                s.reinfers,
                s.solver,
                s.inferred,
                s.stale,
                s.kernel
            );
            match &s.history {
                Some(h) => {
                    text.push_str(&format!(
                        " history={}:{} history_snapshots={} history_bytes={} history_generation={} history_recovered={}",
                        h.backing, h.path, h.snapshots, h.bytes, h.generation, h.recovered
                    ));
                }
                None => text.push_str(" history=none"),
            }
            Ok(Reply::ok(text))
        }
        Request::Obs { len } => {
            let mut bytes = vec![0u8; len];
            body.read_exact(&mut bytes)
                .map_err(|e| ServeError::Protocol(format!("short OBS payload: {e}")))?;
            let ingested = service.ingest_block(&bytes)?;
            Ok(Reply::ok(format!(
                "ingested={ingested} snapshots={}",
                service.num_snapshots()
            )))
        }
        Request::Infer => {
            let snapshots = service.num_snapshots();
            let diagnostics = service.reinfer()?.diagnostics.clone();
            Ok(Reply::ok(format!(
                "snapshots={snapshots} solver={:?} residual={} iterations={} stale={}",
                diagnostics.solver,
                diagnostics.residual,
                diagnostics.iterations,
                service.stale()
            )))
        }
        Request::Prob { link } => Ok(Reply::ok(format!("{}", service.probability(link)?))),
        Request::Probs => {
            let probabilities = service.probabilities()?;
            let mut text = String::with_capacity(20 + 20 * probabilities.len());
            text.push_str(&format!("stale={} ", service.stale()));
            text.push_str(&probabilities.len().to_string());
            for p in probabilities {
                text.push(' ');
                text.push_str(&p.to_string());
            }
            Ok(Reply::ok(text))
        }
        Request::State { link, threshold } => {
            let threshold = threshold.unwrap_or(DEFAULT_STATE_THRESHOLD);
            let (congested, p) = service.link_state(link, threshold)?;
            Ok(Reply::ok(format!(
                "congested={congested} probability={p} threshold={threshold}"
            )))
        }
        Request::Shutdown => Ok(Reply {
            text: "OK bye".into(),
            shutdown: true,
        }),
    }
}

/// Encodes observations as the framed `OBS` request (`OBS <len>\n` +
/// raw v3 block), the exact bytes a client writes to the socket.
pub fn frame_observations(observations: &PathObservations) -> Vec<u8> {
    let block = observations.to_binary();
    let mut framed = format!("OBS {}\n", block.len()).into_bytes();
    framed.extend_from_slice(&block);
    framed
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_core::AlgorithmConfig;
    use netcorr_topology::toy;

    fn service() -> TomographyService {
        TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default()).unwrap()
    }

    fn observations(snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..snapshots {
            obs.record_snapshot(&[i % 3 == 0, i % 4 == 0, i % 5 == 0])
                .unwrap();
        }
        obs
    }

    #[test]
    fn request_lines_parse() {
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(Request::parse("STATUS").unwrap(), Request::Status);
        assert_eq!(
            Request::parse("OBS 128").unwrap(),
            Request::Obs { len: 128 }
        );
        assert_eq!(Request::parse("INFER").unwrap(), Request::Infer);
        assert_eq!(Request::parse("PROB 2").unwrap(), Request::Prob { link: 2 });
        assert_eq!(Request::parse("PROBS").unwrap(), Request::Probs);
        assert_eq!(
            Request::parse("STATE 1").unwrap(),
            Request::State {
                link: 1,
                threshold: None
            }
        );
        assert_eq!(
            Request::parse("STATE 1 0.25").unwrap(),
            Request::State {
                link: 1,
                threshold: Some(0.25)
            }
        );
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
        // Malformed lines are protocol errors, with useful messages.
        for bad in [
            "",
            "FLY",
            "OBS",
            "OBS many",
            "PROB",
            "PROB x",
            "STATE",
            "STATE 1 hot",
            "PING extra",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ServeError::Protocol(_))),
                "line {bad:?} should be rejected"
            );
        }
        // The OBS length cap guards allocation.
        assert!(Request::parse(&format!("OBS {}", MAX_OBS_BYTES + 1)).is_err());
    }

    #[test]
    fn a_full_session_through_execute() {
        let mut service = service();
        let mut empty: &[u8] = &[];

        let reply = execute(&mut service, "PING", &mut empty);
        assert_eq!(reply.text, "OK pong");
        assert!(!reply.shutdown);

        // Ingest 40 snapshots through the framed OBS encoding.
        let obs = observations(40);
        let framed = frame_observations(&obs);
        let newline = framed.iter().position(|&b| b == b'\n').unwrap();
        let line = std::str::from_utf8(&framed[..newline]).unwrap();
        let mut body = &framed[newline + 1..];
        let reply = execute(&mut service, line, &mut body);
        assert_eq!(reply.text, "OK ingested=40 snapshots=40");

        let reply = execute(&mut service, "INFER", &mut empty);
        assert!(reply.text.starts_with("OK snapshots=40 solver=DenseExact"));
        assert!(reply.text.ends_with("stale=false"), "got {}", reply.text);

        // PROB round-trips the exact bits of the service's estimate.
        let p0 = service.probability(0).unwrap();
        let reply = execute(&mut service, "PROB 0", &mut empty);
        let parsed: f64 = reply.text.strip_prefix("OK ").unwrap().parse().unwrap();
        assert_eq!(parsed.to_bits(), p0.to_bits());

        let reply = execute(&mut service, "PROBS", &mut empty);
        let mut words = reply.text.strip_prefix("OK ").unwrap().split(' ');
        assert_eq!(words.next().unwrap(), "stale=false");
        assert_eq!(words.next().unwrap(), "4");
        let probs: Vec<f64> = words.map(|w| w.parse().unwrap()).collect();
        assert_eq!(probs, service.probabilities().unwrap());

        let reply = execute(&mut service, "STATE 0 0.9", &mut empty);
        assert!(reply.text.contains("threshold=0.9"));
        let reply = execute(&mut service, "STATUS", &mut empty);
        assert!(reply.text.contains("snapshots=40") && reply.text.contains("inferred=true"));
        assert!(reply.text.contains("stale=false"), "got {}", reply.text);
        // The kernel tier is reported, and without --history the history
        // field reads `none`.
        assert!(
            reply.text.contains("kernel=avx512")
                || reply.text.contains("kernel=avx2")
                || reply.text.contains("kernel=portable"),
            "got {}",
            reply.text
        );
        assert!(reply.text.contains("history=none"), "got {}", reply.text);

        let reply = execute(&mut service, "SHUTDOWN", &mut empty);
        assert_eq!(reply.text, "OK bye");
        assert!(reply.shutdown);
    }

    #[test]
    fn failures_become_err_replies_not_panics() {
        let mut service = service();
        let mut empty: &[u8] = &[];
        // Query before inference.
        let reply = execute(&mut service, "PROB 0", &mut empty);
        assert!(reply.text.starts_with("ERR "), "got {}", reply.text);
        // Unknown verb.
        let reply = execute(&mut service, "EXPLODE", &mut empty);
        assert!(reply.text.contains("unknown command"));
        // Declared payload longer than what arrives.
        let mut short: &[u8] = b"too short";
        let reply = execute(&mut service, "OBS 1000", &mut short);
        assert!(reply.text.contains("short OBS payload"));
        // A payload that is not a v3 block.
        let mut junk: &[u8] = b"JUNKJUNKJUNKJUNK";
        let reply = execute(&mut service, "OBS 16", &mut junk);
        assert!(reply.text.contains("invalid observation block"));
        // None of those took the service down.
        assert_eq!(execute(&mut service, "PING", &mut empty).text, "OK pong");
    }
}
