//! Differential tests of the streaming→inference loop: a daemon-style
//! run (push snapshots incrementally, re-infer warm after every batch)
//! must converge to the same link verdicts as the offline batch path —
//! on the paper's Figure 1(a) toy topology and on the smoke PlanetLab
//! fixture, on both the dense (bit-identical) and sparse (warm-started
//! CGLS) solve plans.

use netcorr_core::{AlgorithmConfig, InferenceContext};
use netcorr_eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr_eval::scenario::{ScenarioBuilder, ScenarioConfig};
use netcorr_measure::PathObservations;
use netcorr_serve::TomographyService;
use netcorr_sim::{SimulationConfig, Simulator};
use netcorr_topology::{toy, TopologyInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The verdict threshold for "is this link congested".
const VERDICT: f64 = 0.5;

/// Simulates `snapshots` observations of a default scenario on `base`.
fn simulate(base: &TopologyInstance, seed: u64, snapshots: usize) -> PathObservations {
    let scenario = ScenarioBuilder::new(ScenarioConfig::default())
        .unwrap()
        .build(base, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .unwrap();
    simulator.run(snapshots, &mut StdRng::seed_from_u64(seed.wrapping_add(1)))
}

/// Runs the daemon-style loop: ingest `batch`-sized chunks, re-infer
/// (warm) after each, return the final probabilities.
fn daemon_style(
    instance: &TopologyInstance,
    config: &AlgorithmConfig,
    observations: &PathObservations,
    batch: usize,
) -> Vec<f64> {
    let mut service = TomographyService::new(instance, config).unwrap();
    let mut pushed = 0;
    while pushed < observations.num_snapshots() {
        let end = (pushed + batch).min(observations.num_snapshots());
        for i in pushed..end {
            service.push_snapshot(&observations.snapshot(i)).unwrap();
        }
        pushed = end;
        // Every intermediate refresh must already produce a full estimate.
        let estimate = service.reinfer().unwrap();
        assert_eq!(estimate.num_links(), instance.num_links());
    }
    service.probabilities().unwrap().to_vec()
}

fn verdicts(probabilities: &[f64]) -> Vec<bool> {
    probabilities.iter().map(|&p| p > VERDICT).collect()
}

#[test]
fn incremental_warm_runs_match_offline_batch_on_fig1a() {
    let instance = toy::figure_1a();
    let config = AlgorithmConfig::default();
    let observations = simulate(&instance, 11, 600);

    let offline = InferenceContext::new(&instance, &config)
        .unwrap()
        .infer(&observations)
        .unwrap();
    // Several batch granularities, including one that does not divide
    // the snapshot count.
    for batch in [50, 128, 600] {
        let streamed = daemon_style(&instance, &config, &observations, batch);
        assert_eq!(
            streamed, // dense plan: bit-identical, not merely close
            offline.probabilities(),
            "batch size {batch}"
        );
        assert_eq!(verdicts(&streamed), verdicts(offline.probabilities()));
    }
}

#[test]
fn incremental_warm_runs_match_offline_batch_on_smoke_planetlab() {
    let instance = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 3).unwrap();
    let config = AlgorithmConfig::default();
    let observations = simulate(&instance, 23, 500);

    let offline = InferenceContext::new(&instance, &config)
        .unwrap()
        .infer(&observations)
        .unwrap();
    let streamed = daemon_style(&instance, &config, &observations, 100);
    assert_eq!(streamed, offline.probabilities());
    assert_eq!(verdicts(&streamed), verdicts(offline.probabilities()));
}

#[test]
fn warm_started_sparse_runs_agree_with_cold_offline_solves() {
    // Force the sparse CGLS plan (the scale path the warm start exists
    // for): the daemon re-infers warm after every batch, the offline
    // comparator solves cold from zero. At the default tolerance both
    // converge to the same solution well past verdict precision.
    let instance = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 3).unwrap();
    let mut config = AlgorithmConfig::default();
    config.solver.dense_threshold = 0;
    let observations = simulate(&instance, 29, 500);

    let offline = InferenceContext::new(&instance, &config)
        .unwrap()
        .infer(&observations)
        .unwrap();
    let streamed = daemon_style(&instance, &config, &observations, 100);
    let max_diff = streamed
        .iter()
        .zip(offline.probabilities())
        .map(|(s, o)| (s - o).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        max_diff <= 1e-6,
        "warm-started stream drifted from the cold batch answer by {max_diff}"
    );
    assert_eq!(verdicts(&streamed), verdicts(offline.probabilities()));
}
