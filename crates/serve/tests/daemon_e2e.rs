//! End-to-end test of the `netcorr-serve` binary: spawn the daemon,
//! stream observation batches over a real TCP socket, and check that
//! the queried congestion probabilities are **bit-identical** to the
//! offline batch inference over the same observations.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use netcorr_core::{AlgorithmConfig, InferenceContext};
use netcorr_eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr_eval::scenario::{ScenarioBuilder, ScenarioConfig};
use netcorr_measure::PathObservations;
use netcorr_serve::Client;
use netcorr_sim::{SimulationConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Kills the daemon if the test panics before the clean shutdown.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns the daemon and parses the ephemeral TCP address it reports.
fn spawn_daemon(args: &[&str]) -> (Daemon, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_netcorr-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn netcorr-serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        if let Some(rest) = line.strip_prefix("netcorr-serve: listening on tcp://") {
            break rest.to_string();
        }
    };
    (Daemon(child), addr)
}

/// Simulated observations for the smoke PlanetLab instance, regenerated
/// deterministically from the same seed the daemon uses for its
/// topology.
fn smoke_observations(seed: u64, snapshots: usize) -> PathObservations {
    let base = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, seed).unwrap();
    let scenario = ScenarioBuilder::new(ScenarioConfig::default())
        .unwrap()
        .build(&base, &mut StdRng::seed_from_u64(seed ^ 0x5eed))
        .unwrap();
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .unwrap();
    let observations = simulator.run(snapshots, &mut StdRng::seed_from_u64(seed ^ 0x0b5));
    assert_eq!(observations.num_paths(), base.num_paths());
    observations
}

/// The `snapshots[range]` slice as its own observation block.
fn slice_block(observations: &PathObservations, range: std::ops::Range<usize>) -> PathObservations {
    let mut block = PathObservations::new(observations.num_paths());
    for i in range {
        block.record_snapshot(&observations.snapshot(i)).unwrap();
    }
    block
}

#[test]
fn daemon_probabilities_are_bit_identical_to_offline_inference() {
    const SEED: u64 = 7;
    let (daemon, addr) = spawn_daemon(&[
        "--listen",
        "127.0.0.1:0",
        "--topology",
        "planetlab-smoke",
        "--topology-seed",
        "7",
    ]);
    let observations = smoke_observations(SEED, 400);

    // Stream the observations in three batches, re-inferring after each
    // — the daemon's warm-start chain is exercised on every batch.
    let mut client = Client::connect_tcp(addr.as_str()).expect("connect to the daemon");
    for (lo, hi) in [(0, 100), (100, 250), (250, 400)] {
        let block = slice_block(&observations, lo..hi);
        let (ingested, total) = client.ingest(&block).unwrap();
        assert_eq!(ingested, hi - lo);
        assert_eq!(total, hi);
        let infer = client.infer().unwrap();
        assert_eq!(infer.snapshots, hi);
    }

    // Offline comparator: the exact computation `run_trial` performs for
    // the correlation arm — a cached-context batch inference over the
    // same instance and the same accumulated observations.
    let instance = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, SEED).unwrap();
    let offline = InferenceContext::new(&instance, &AlgorithmConfig::default())
        .unwrap()
        .infer(&observations)
        .unwrap();

    let daemon_probs = client.probabilities().unwrap();
    assert_eq!(daemon_probs.len(), offline.num_links());
    for (link, (&streamed, &batch)) in daemon_probs.iter().zip(offline.probabilities()).enumerate()
    {
        assert_eq!(
            streamed.to_bits(),
            batch.to_bits(),
            "link {link}: daemon answered {streamed}, offline batch answered {batch}"
        );
    }

    // Single-link queries agree with the bulk query bit for bit, and the
    // STATE verdict is consistent with the probability.
    for link in [0, 1, daemon_probs.len() - 1] {
        let p = client.probability(link).unwrap();
        assert_eq!(p.to_bits(), daemon_probs[link].to_bits());
        let (congested, reported) = client.link_state(link, Some(0.5)).unwrap();
        assert_eq!(reported.to_bits(), p.to_bits());
        assert_eq!(congested, p > 0.5);
    }

    let status = client.status().unwrap();
    assert_eq!(status.num_snapshots, 400);
    assert_eq!(status.num_links, offline.num_links());
    assert_eq!(status.reinfers, 3);
    assert!(status.inferred);

    // Graceful in-band shutdown: the daemon exits with status 0.
    client.shutdown().unwrap();
    let mut daemon = daemon;
    let exit = daemon.0.wait().unwrap();
    assert!(exit.success(), "daemon exited with {exit:?}");
}

#[test]
fn daemon_replies_err_per_request_instead_of_dropping_connections() {
    let (daemon, addr) = spawn_daemon(&["--listen", "127.0.0.1:0", "--topology", "fig1a"]);
    let mut client = Client::connect_tcp(addr.as_str()).unwrap();

    // Query before any data: a server-side error reply.
    let err = client.probability(0).unwrap_err();
    assert!(matches!(err, netcorr_serve::ClientError::Server(_)));
    // INFER before any data likewise.
    assert!(client.infer().is_err());
    // A block over the wrong number of paths (fig1a has 3).
    let mut wrong = PathObservations::new(9);
    wrong.record_snapshot(&[false; 9]).unwrap();
    let err = client.ingest(&wrong).unwrap_err();
    assert!(err.to_string().contains("9"), "got: {err}");
    // The session survived all of it.
    client.ping().unwrap();

    // And a well-formed session still works afterwards.
    let mut obs = PathObservations::new(3);
    for i in 0..24 {
        obs.record_snapshot(&[i % 2 == 0, i % 3 == 0, i % 5 == 0])
            .unwrap();
    }
    client.ingest(&obs).unwrap();
    client.infer().unwrap();
    assert_eq!(client.probabilities().unwrap().len(), 4);

    client.shutdown().unwrap();
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());
}

#[test]
fn restarted_daemon_reloads_mmap_history_and_answers_bit_identically() {
    const SEED: u64 = 11;
    let dir = std::env::temp_dir().join(format!("netcorr_daemon_restart_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.ncobs3");
    let history_arg = history.display().to_string();
    let observations = smoke_observations(SEED, 140);
    let base_args = [
        "--listen",
        "127.0.0.1:0",
        "--topology",
        "planetlab-smoke",
        "--topology-seed",
        "11",
        "--history",
        history_arg.as_str(),
    ];

    // First life: ingest snapshots 0..57 (deliberately not a multiple of
    // 64, so the persisted history ends mid lane word), infer, shut down.
    {
        let (daemon, addr) = spawn_daemon(&base_args);
        let mut client = Client::connect_tcp(addr.as_str()).unwrap();
        let status = client.status().unwrap();
        let h = status.history.expect("history enabled via --history");
        assert_eq!(h.snapshots, 0, "fresh history file");
        client.ingest(&slice_block(&observations, 0..57)).unwrap();
        client.infer().unwrap();
        client.shutdown().unwrap();
        let mut daemon = daemon;
        assert!(daemon.0.wait().unwrap().success());
    }
    assert!(history.exists(), "history persisted before shutdown");

    // Second life: the daemon reloads the 57 persisted snapshots through
    // the zero-copy map and continues the stream where it stopped.
    let (daemon, addr) = spawn_daemon(&base_args);
    let mut client = Client::connect_tcp(addr.as_str()).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.num_snapshots, 57, "history reloaded on startup");
    let h = status.history.expect("history enabled via --history");
    assert_eq!(h.snapshots, 57);
    assert!(h.bytes > 0);
    assert_eq!(h.path, history_arg);
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert_eq!(h.backing, "mmap", "reload is served from the mapping");
    assert!(["avx512", "avx2", "portable"].contains(&status.kernel.as_str()));

    let (ingested, total) = client.ingest(&slice_block(&observations, 57..140)).unwrap();
    assert_eq!(ingested, 83);
    assert_eq!(total, 140);
    client.infer().unwrap();
    let restarted_probs = client.probabilities().unwrap();
    let restarted_state = client.link_state(0, Some(0.5)).unwrap();
    client.shutdown().unwrap();
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());

    // Uninterrupted comparator: a fresh daemon fed the whole stream in
    // one life (no history file) must answer bit-identically.
    let (daemon, addr) = spawn_daemon(&base_args[..6]);
    let mut client = Client::connect_tcp(addr.as_str()).unwrap();
    client.ingest(&slice_block(&observations, 0..140)).unwrap();
    client.infer().unwrap();
    let whole_probs = client.probabilities().unwrap();
    let whole_state = client.link_state(0, Some(0.5)).unwrap();
    client.shutdown().unwrap();
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());

    assert_eq!(restarted_probs.len(), whole_probs.len());
    for (link, (&restarted, &whole)) in restarted_probs.iter().zip(&whole_probs).enumerate() {
        assert_eq!(
            restarted.to_bits(),
            whole.to_bits(),
            "link {link}: restarted daemon answered {restarted}, uninterrupted answered {whole}"
        );
    }
    assert_eq!(restarted_state.0, whole_state.0);
    assert_eq!(restarted_state.1.to_bits(), whole_state.1.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_history_fails_startup_and_corrupt_obs_keeps_the_session() {
    let dir = std::env::temp_dir().join(format!("netcorr_daemon_corrupt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.ncobs3");
    // A corrupt history file (dirty tail) must fail startup with a clear
    // error instead of panicking or serving wrong counts.
    let mut obs = PathObservations::new(3);
    for i in 0..10 {
        obs.record_snapshot(&[i % 2 == 0, i % 3 == 0, false])
            .unwrap();
    }
    let mut bytes = obs.to_binary();
    let last = bytes.len() - 1;
    bytes[last] |= 0x80;
    std::fs::write(&history, &bytes).unwrap();
    let history_arg = history.display().to_string();
    let out = Command::new(env!("CARGO_BIN_EXE_netcorr-serve"))
        .args(["--topology", "fig1a", "--history", history_arg.as_str()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed to reload history"), "got: {stderr}");

    // A corrupt OBS payload over the wire produces an ERR reply and the
    // session — and the persisted history — survive it untouched.
    std::fs::remove_file(&history).unwrap();
    let (daemon, addr) = spawn_daemon(&[
        "--listen",
        "127.0.0.1:0",
        "--topology",
        "fig1a",
        "--history",
        history_arg.as_str(),
    ]);
    let mut client = Client::connect_tcp(addr.as_str()).unwrap();
    client.ingest(&obs).unwrap();
    // Hand-roll a framed OBS whose payload is a v3 block with a dirty
    // tail: the server must reject it without panicking.
    let err = client.ingest_raw_block(&bytes).unwrap_err();
    assert!(
        err.to_string().contains("invalid observation block"),
        "got: {err}"
    );
    client.ping().unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.num_snapshots, 10, "failed ingest added nothing");
    assert_eq!(status.history.unwrap().snapshots, 10);
    client.shutdown().unwrap();
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

/// A raw protocol session: hand-written request lines over the TCP
/// socket, for hostile inputs the typed [`Client`] cannot produce.
struct RawSession {
    writer: std::net::TcpStream,
    reader: BufReader<std::net::TcpStream>,
}

impl RawSession {
    fn connect(addr: &str) -> Self {
        let writer = std::net::TcpStream::connect(addr).expect("connect to the daemon");
        let reader = BufReader::new(writer.try_clone().expect("clone the stream"));
        RawSession { writer, reader }
    }

    /// Sends raw bytes and reads the single-line reply.
    fn roundtrip(&mut self, bytes: &[u8]) -> String {
        use std::io::Write;
        self.writer.write_all(bytes).expect("write request");
        self.writer.flush().expect("flush request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }

    fn command(&mut self, line: &str) -> String {
        self.roundtrip(format!("{line}\n").as_bytes())
    }

    /// Sends a framed OBS request with an explicit (possibly lying)
    /// declared length.
    fn obs(&mut self, declared_len: usize, payload: &[u8]) -> String {
        let mut framed = format!("OBS {declared_len}\n").into_bytes();
        framed.extend_from_slice(payload);
        self.roundtrip(&framed)
    }
}

#[test]
fn hostile_obs_headers_get_err_replies_and_the_session_survives() {
    let (daemon, addr) = spawn_daemon(&["--listen", "127.0.0.1:0", "--topology", "fig1a"]);
    let mut session = RawSession::connect(&addr);

    // An OBS length over the allocation cap is rejected at the header —
    // before any payload is read — and the session keeps answering.
    let reply = session.command("OBS 300000000");
    assert!(reply.starts_with("ERR "), "oversized len: got {reply}");
    assert!(reply.contains("cap"), "oversized len: got {reply}");
    assert_eq!(session.command("PING"), "OK pong");

    // Zero-length, non-numeric and overflowing lengths likewise.
    for header in [
        "OBS 0",
        "OBS abc",
        "OBS 99999999999999999999999",
        "OBS -4",
        "OBS",
    ] {
        let reply = session.command(header);
        assert!(reply.starts_with("ERR "), "{header}: got {reply}");
        assert_eq!(session.command("PING"), "OK pong", "after {header}");
    }

    // The ERR replies left nothing behind: a well-formed session works.
    let mut obs = PathObservations::new(3);
    for i in 0..24 {
        obs.record_snapshot(&[i % 2 == 0, i % 3 == 0, i % 5 == 0])
            .unwrap();
    }
    let block = obs.to_binary();
    let reply = session.obs(block.len(), &block);
    assert!(reply.starts_with("OK "), "good block after errors: {reply}");
    assert!(session.command("INFER").starts_with("OK "));

    session.command("SHUTDOWN");
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());
}

#[test]
fn ragged_blocks_mid_stream_are_rejected_without_corrupting_the_estimator() {
    let (daemon, addr) = spawn_daemon(&["--listen", "127.0.0.1:0", "--topology", "fig1a"]);
    let mut session = RawSession::connect(&addr);

    let mut obs = PathObservations::new(3);
    for i in 0..48 {
        obs.record_snapshot(&[i % 2 == 0, i % 3 == 0, i % 7 == 0])
            .unwrap();
    }
    let block = obs.to_binary();

    // A good block, inferred: this is the reference state.
    assert!(session.obs(block.len(), &block).starts_with("OK "));
    assert!(session.command("INFER").starts_with("OK "));
    let reference_probs = session.command("PROBS");
    assert!(reference_probs.starts_with("OK "));
    let reference_status = session.command("STATUS");

    // A ragged v3 block mid-stream: the declared length matches the bytes
    // sent, but the block itself is truncated mid-row. The server reads
    // the full payload, fails to parse it, and answers ERR in-band.
    let ragged = &block[..block.len() - 5];
    let reply = session.obs(ragged.len(), ragged);
    assert!(reply.starts_with("ERR "), "ragged block: got {reply}");
    assert_eq!(session.command("PING"), "OK pong");

    // A block over the wrong path count is parsed whole, then rejected
    // before a single snapshot reaches the estimator.
    let mut wrong = PathObservations::new(5);
    wrong.record_snapshot(&[true; 5]).unwrap();
    let wrong_block = wrong.to_binary();
    let reply = session.obs(wrong_block.len(), &wrong_block);
    assert!(reply.starts_with("ERR "), "wrong path count: got {reply}");

    // INFER after the rejected blocks: the estimator was not partially
    // updated — snapshot count and probabilities are bit-identical to the
    // pre-rejection state.
    assert_eq!(session.command("STATUS"), reference_status);
    assert!(session.command("INFER").starts_with("OK "));
    assert_eq!(session.command("PROBS"), reference_probs);

    // And the stream continues: more good data still ingests and infers.
    assert!(session.obs(block.len(), &block).starts_with("OK "));
    assert!(session.command("INFER").starts_with("OK "));

    session.command("SHUTDOWN");
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());
}

#[test]
fn shutdown_drains_a_mid_flight_ingest_and_persists_it() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("netcorr_daemon_drain_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.ncobs3");
    let history_arg = history.display().to_string();
    let (daemon, addr) = spawn_daemon(&[
        "--listen",
        "127.0.0.1:0",
        "--topology",
        "fig1a",
        "--history",
        history_arg.as_str(),
        "--drain-timeout-ms",
        "2000",
    ]);

    // Session A: an OBS request whose body is only partially sent — the
    // ingest is mid-flight when the shutdown arrives.
    let mut obs = PathObservations::new(3);
    for i in 0..30 {
        obs.record_snapshot(&[i % 2 == 0, i % 3 == 0, i % 5 == 0])
            .unwrap();
    }
    let block = obs.to_binary();
    let mut framed = format!("OBS {}\n", block.len()).into_bytes();
    framed.extend_from_slice(&block);
    let mut slow = std::net::TcpStream::connect(addr.as_str()).unwrap();
    slow.write_all(&framed[..framed.len() - 9]).unwrap();
    slow.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Session B: SHUTDOWN while A's body is still unsent.
    let mut control = Client::connect_tcp(addr.as_str()).unwrap();
    control.shutdown().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // A's ingest must still complete — acked and durably persisted —
    // inside the drain window, and only then may the daemon exit.
    slow.write_all(&framed[framed.len() - 9..]).unwrap();
    slow.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(&slow).read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "OK ingested=30 snapshots=30");
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());

    // The drained ingest survived the restart.
    let (daemon, addr) = spawn_daemon(&[
        "--listen",
        "127.0.0.1:0",
        "--topology",
        "fig1a",
        "--history",
        history_arg.as_str(),
    ]);
    let mut client = Client::connect_tcp(addr.as_str()).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.num_snapshots, 30, "drained ingest was persisted");
    assert!(
        !status.history.unwrap().recovered,
        "clean file, no recovery"
    );
    client.shutdown().unwrap();
    let mut daemon = daemon;
    assert!(daemon.0.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_harness_holds_on_a_fresh_seed() {
    // One short chaos round as a regression gate: the full schedule
    // (seeds 1..3, all scenarios) runs in the named `chaos` CI job.
    let out = Command::new(env!("CARGO_BIN_EXE_netcorr-chaos"))
        .args([
            "--seed",
            "9",
            "--rounds",
            "1",
            "--scenario",
            "torn-history",
            "--serve-bin",
            env!("CARGO_BIN_EXE_netcorr-serve"),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "chaos harness failed:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("all assertions held"), "got: {stdout}");
}

#[test]
fn help_exits_zero_and_bad_flags_exit_nonzero() {
    let exe = env!("CARGO_BIN_EXE_netcorr-serve");
    let help = Command::new(exe).arg("--help").output().unwrap();
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("usage:"));

    let bad = Command::new(exe).arg("--bogus").output().unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown argument"));

    let bad_topology = Command::new(exe)
        .args(["--topology", "internet2"])
        .output()
        .unwrap();
    assert!(!bad_topology.status.success());
    assert!(String::from_utf8_lossy(&bad_topology.stderr).contains("unknown topology"));
}
