//! Property test for crash-safe history recovery: a history file torn at
//! **any** byte offset — as a daemon aborted mid-write leaves it — must
//! recover to exactly the acked ingest prefix, and a daemon serving the
//! recovered history must answer bit-identically to one that replayed
//! only the acked ingests. Exercised end to end through an in-process
//! [`Server`] over both the tcp and unix transports.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use netcorr_core::AlgorithmConfig;
use netcorr_measure::PathObservations;
use netcorr_serve::{Client, ListenAddr, Server, TomographyService};
use netcorr_topology::toy;
use proptest::prelude::*;

/// SplitMix64 — seeded snapshot content, independent of proptest's own
/// sampling so a failing case replays from its printed inputs alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic observation block over Figure 1(a)'s three paths.
fn block(seed: u64, tag: u64, snapshots: usize) -> PathObservations {
    let mut b = PathObservations::new(3);
    for s in 0..snapshots {
        let word = splitmix64(seed ^ tag.wrapping_mul(0x9e37_79b9).wrapping_add(s as u64));
        b.record_snapshot(&[word & 1 == 1, word & 2 == 2, word & 4 == 4])
            .unwrap();
    }
    b
}

fn service(history: Option<&Path>) -> TomographyService {
    let mut s = TomographyService::new(&toy::figure_1a(), &AlgorithmConfig::default()).unwrap();
    if let Some(path) = history {
        s.enable_history(path).unwrap();
    }
    s
}

/// Drives the post-recovery session over either transport: checks the
/// recovered state, streams one more block, and returns the served
/// probabilities.
fn drive<S: std::io::Read + std::io::Write>(
    client: &mut Client<S>,
    acked_snapshots: usize,
    acked_generation: u64,
    post: &PathObservations,
) -> (bool, u64, Vec<f64>) {
    let status = client.status().unwrap();
    let history = status.history.expect("history enabled");
    let recovered = history.recovered;
    let generation = history.generation;
    assert_eq!(
        status.num_snapshots, acked_snapshots,
        "recovery must land on exactly the acked prefix"
    );
    assert_eq!(generation, acked_generation);
    client.ingest(post).unwrap();
    let infer = client.infer().unwrap();
    assert!(!infer.stale);
    (recovered, generation, client.probabilities().unwrap())
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `sizes` are the per-ingest block sizes; the **last** block's
    /// history write is the one that tears (it is never acked), at a
    /// byte offset derived from `tear`. `transport` picks tcp or unix.
    #[test]
    fn torn_history_recovers_to_the_exact_acked_prefix(
        sizes in prop::collection::vec(1usize..=12, 1..=5),
        tear in 0usize..=1_000_000,
        content_seed in 0u64..=u64::MAX,
        transport in 0usize..=1,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "netcorr_fault_recovery_{}_{case}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let history = dir.join("history.ncobs3");

        // Life 1: every block ingests durably; the final current file
        // holds the last generation and `.prev` the one before it.
        let mut first = service(Some(&history));
        for (i, &n) in sizes.iter().enumerate() {
            first.ingest_observations(&block(content_seed, i as u64, n)).unwrap();
        }
        drop(first);

        // The crash: the last generation's write tears at an arbitrary
        // byte offset — the file keeps only a prefix of the sealed
        // bytes, exactly as an aborted writer leaves it. Everything
        // before the last block is the acked prefix.
        let sealed = std::fs::read(&history).unwrap();
        let acked_blocks = sizes.len() - 1;
        let mut torn_len = tear % sealed.len();
        if acked_blocks == 0 && torn_len == sealed.len() - 32 {
            // A *first*-generation write torn exactly at the payload
            // boundary is indistinguishable from a legacy footer-less
            // file (documented recovery behaviour) — dodge that offset.
            torn_len += 1;
        }
        std::fs::write(&history, &sealed[..torn_len]).unwrap();
        let acked_snapshots: usize = sizes[..acked_blocks].iter().sum();
        let post = block(content_seed, 0xdead, 9);

        // Life 2: a daemon over the torn file, behind a real server
        // socket on the sampled transport.
        let recovered_service = service(Some(&history));
        prop_assert_eq!(recovered_service.num_snapshots(), acked_snapshots);
        let listen = if transport == 0 || cfg!(not(unix)) {
            ListenAddr::Tcp("127.0.0.1:0".into())
        } else {
            ListenAddr::Unix(dir.join("recovery.sock"))
        };
        let server = Server::bind(recovered_service, &listen).unwrap();
        let description = server.local_description();
        let handle = std::thread::spawn(move || server.run());
        let (recovered, generation, probs) = if let Some(addr) =
            description.strip_prefix("tcp://")
        {
            let mut client = Client::connect_tcp(addr).unwrap();
            let out = drive(&mut client, acked_snapshots, acked_blocks as u64, &post);
            client.shutdown().unwrap();
            out
        } else {
            let mut client = Client::connect_unix(dir.join("recovery.sock")).unwrap();
            let out = drive(&mut client, acked_snapshots, acked_blocks as u64, &post);
            client.shutdown().unwrap();
            out
        };
        handle.join().unwrap().unwrap();
        prop_assert!(recovered, "a torn current file must be reported as recovered");
        prop_assert_eq!(generation, acked_blocks as u64);

        // Comparator: replay only the acked ingests (plus the
        // post-recovery block) with no history at all — the recovered
        // daemon must be bit-identical to it.
        let mut comparator = service(None);
        for (i, &n) in sizes[..acked_blocks].iter().enumerate() {
            comparator.ingest_observations(&block(content_seed, i as u64, n)).unwrap();
        }
        comparator.ingest_observations(&post).unwrap();
        comparator.reinfer().unwrap();
        let expected = comparator.probabilities().unwrap();
        prop_assert_eq!(probs.len(), expected.len());
        for (link, (&served, &replayed)) in probs.iter().zip(expected).enumerate() {
            prop_assert_eq!(
                served.to_bits(),
                replayed.to_bits(),
                "link {}: recovered daemon served {}, acked replay gives {}",
                link, served, replayed
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
