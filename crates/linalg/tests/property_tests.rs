//! Property-based tests for the numerical substrate.
//!
//! These check structural invariants of the solvers on randomly generated,
//! well-conditioned inputs: solutions actually satisfy the systems they
//! were produced from, factorisations reproduce the original matrices, and
//! the minimum-L1 solution never has a larger L1 norm than any other
//! feasible point we can construct.

use netcorr_linalg::{
    l1::min_l1_norm_solution,
    lstsq::solve_least_squares,
    lu::LuDecomposition,
    matrix::Matrix,
    norms::{l1_norm, l2_norm, sub},
    qr::QrDecomposition,
    rank::{numerical_rank, select_independent_rows},
    simplex::{LinearProgram, LpStatus},
    sparse::{cgls, SparseMatrix},
};
use proptest::prelude::*;

/// Converts a dense matrix into the sparse row format, keeping every entry
/// (including explicit zeros — the formats must agree regardless).
fn sparse_from_dense(m: &Matrix) -> SparseMatrix {
    let mut sparse = SparseMatrix::new(m.cols());
    for i in 0..m.rows() {
        let entries: Vec<(usize, f64)> = (0..m.cols()).map(|j| (j, m[(i, j)])).collect();
        sparse.push_row(&entries).unwrap();
    }
    sparse
}

/// Strategy: a diagonally dominant square matrix of size `n` (always
/// invertible and well conditioned).
fn diag_dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_row_slice(n, n, &vals).unwrap();
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    })
}

/// Strategy: an arbitrary vector of length `n` with moderate entries.
fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solution_satisfies_system(a in diag_dominant_matrix(6), x_true in vector(6)) {
        let b = a.matvec(&x_true).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        prop_assert!(!lu.is_singular());
        let x = lu.solve(&b).unwrap();
        let residual = l2_norm(&sub(&a.matvec(&x).unwrap(), &b));
        prop_assert!(residual < 1e-6, "residual {residual}");
    }

    #[test]
    fn lu_inverse_is_two_sided(a in diag_dominant_matrix(5)) {
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let eye = Matrix::identity(5);
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&eye, 1e-7));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&eye, 1e-7));
    }

    #[test]
    fn determinant_sign_flips_with_row_swap(a in diag_dominant_matrix(4)) {
        let d1 = LuDecomposition::new(&a).unwrap().determinant();
        let mut swapped = a.clone();
        swapped.swap_rows(0, 1);
        let d2 = LuDecomposition::new(&swapped).unwrap().determinant();
        prop_assert!((d1 + d2).abs() < 1e-6 * d1.abs().max(1.0), "d1={d1}, d2={d2}");
    }

    #[test]
    fn qr_least_squares_recovers_exact_solution_of_consistent_system(
        a in diag_dominant_matrix(5),
        x_true in vector(5),
    ) {
        // Stack the square system on top of a duplicate of its first row to
        // get a consistent over-determined system.
        let mut rows: Vec<Vec<f64>> = (0..5).map(|i| a.row(i)).collect();
        rows.push(a.row(0));
        let tall = Matrix::from_rows(&rows).unwrap();
        let mut b = a.matvec(&x_true).unwrap();
        b.push(b[0]);
        let qr = QrDecomposition::new(&tall).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            prop_assert!((xi - ti).abs() < 1e-6, "{xi} vs {ti}");
        }
    }

    #[test]
    fn lstsq_driver_residual_never_exceeds_zero_vector_residual(
        a in diag_dominant_matrix(5),
        b in vector(5),
    ) {
        let sol = solve_least_squares(&a, &b).unwrap();
        // The zero vector is always a candidate, so the LS residual can be
        // at most ‖b‖.
        prop_assert!(sol.residual <= l2_norm(&b) + 1e-9);
    }

    #[test]
    fn rank_is_bounded_by_dimensions(vals in prop::collection::vec(-1.0f64..1.0, 30)) {
        let m = Matrix::from_row_slice(5, 6, &vals).unwrap();
        let r = numerical_rank(&m, 1e-10);
        prop_assert!(r <= 5);
    }

    #[test]
    fn selected_rows_count_equals_rank(vals in prop::collection::vec(-1.0f64..1.0, 24)) {
        let m = Matrix::from_row_slice(6, 4, &vals).unwrap();
        let order: Vec<usize> = (0..6).collect();
        let selected = select_independent_rows(&m, &order, 1e-9);
        // The number of independent rows selected greedily equals the rank.
        prop_assert_eq!(selected.len(), numerical_rank(&m, 1e-9));
    }

    #[test]
    fn min_l1_solution_is_feasible_and_no_worse_than_reference(
        vals in prop::collection::vec(-1.0f64..1.0, 12),
        x_ref in vector(6),
    ) {
        // 2 x 6 under-determined system with a known feasible point x_ref.
        let a = Matrix::from_row_slice(2, 6, &vals).unwrap();
        if numerical_rank(&a, 1e-8) < 2 {
            // Skip nearly-degenerate instances.
            return Ok(());
        }
        let b = a.matvec(&x_ref).unwrap();
        let x = min_l1_norm_solution(&a, &b).unwrap();
        let residual = l2_norm(&sub(&a.matvec(&x).unwrap(), &b));
        prop_assert!(residual < 1e-5, "residual {residual}");
        prop_assert!(l1_norm(&x) <= l1_norm(&x_ref) + 1e-5);
    }

    #[test]
    fn simplex_optimum_is_feasible(
        vals in prop::collection::vec(0.1f64..1.0, 8),
        b in prop::collection::vec(0.5f64..2.0, 2),
        cost in prop::collection::vec(0.1f64..5.0, 4),
    ) {
        // A x = b with positive A and b: always feasible (scale a column).
        let a = Matrix::from_row_slice(2, 4, &vals).unwrap();
        let lp = LinearProgram::new(cost, a.clone(), b.clone()).unwrap();
        let sol = lp.solve().unwrap();
        if sol.status == LpStatus::Optimal {
            let ax = a.matvec(&sol.x).unwrap();
            for (l, r) in ax.iter().zip(b.iter()) {
                prop_assert!((l - r).abs() < 1e-6, "constraint violated: {l} vs {r}");
            }
            prop_assert!(sol.x.iter().all(|&v| v >= -1e-9));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_factors_reconstruct_input(vals in prop::collection::vec(-1.0f64..1.0, 24)) {
        // A 6 x 4 matrix with continuous random entries is full column rank
        // almost surely; the reconstruction identity A = Q·R holds either way.
        let a = Matrix::from_row_slice(6, 4, &vals).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.q();
        let reconstructed = q.matmul(&qr.r()).unwrap();
        prop_assert!(reconstructed.approx_eq(&a, 1e-9), "A != Q R");
        // The thin factor is orthonormal: Qᵀ Q = I.
        let qtq = q.transpose().matmul(&q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(4), 1e-9), "Qᵀ Q != I");
    }

    #[test]
    fn lu_factors_reconstruct_permuted_input(a in diag_dominant_matrix(6)) {
        let lu = LuDecomposition::new(&a).unwrap();
        prop_assert!(!lu.is_singular());
        // Row i of P·A is row permutation()[i] of A.
        let pa = a.select_rows(lu.permutation());
        let reconstructed = lu.l().matmul(&lu.u()).unwrap();
        prop_assert!(reconstructed.approx_eq(&pa, 1e-9), "P A != L U");
    }

    #[test]
    fn sparse_and_dense_matvec_agree(
        vals in prop::collection::vec(-1.0f64..1.0, 30),
        x in vector(6),
        y in vector(5),
    ) {
        // Zero out some entries so the sparse representation is exercised
        // with genuinely sparse rows, not just fully dense ones.
        let dense = Matrix::from_fn(5, 6, |i, j| {
            let v = vals[i * 6 + j];
            if v.abs() < 0.4 {
                0.0
            } else {
                v
            }
        });
        let mut sparse = SparseMatrix::new(6);
        for i in 0..5 {
            let entries: Vec<(usize, f64)> = (0..6)
                .filter(|&j| dense[(i, j)] != 0.0)
                .map(|j| (j, dense[(i, j)]))
                .collect();
            sparse.push_row(&entries).unwrap();
        }
        let forward = l2_norm(&sub(&sparse.matvec(&x).unwrap(), &dense.matvec(&x).unwrap()));
        prop_assert!(forward < 1e-12, "matvec disagreement {forward}");
        let transposed = l2_norm(&sub(
            &sparse.transpose_matvec(&y).unwrap(),
            &dense.transpose().matvec(&y).unwrap(),
        ));
        prop_assert!(transposed < 1e-12, "transpose_matvec disagreement {transposed}");
        prop_assert!(sparse.to_dense().approx_eq(&dense, 0.0), "to_dense round trip");
    }

    #[test]
    fn cgls_converges_on_well_conditioned_systems(
        a in diag_dominant_matrix(8),
        x_true in vector(8),
    ) {
        // Same tolerance as SolverConfig::default().cgls_tolerance.
        let cgls_tolerance = 1e-12;
        let b = a.matvec(&x_true).unwrap();
        let sparse = sparse_from_dense(&a);
        let sol = cgls(&sparse, &b, 0.0, 4000, cgls_tolerance).unwrap();
        prop_assert!(sol.converged, "CGLS hit the iteration cap");
        prop_assert!(sol.residual < 1e-6, "residual {}", sol.residual);
        let err = l2_norm(&sub(&sol.x, &x_true));
        prop_assert!(err < 1e-6, "solution error {err}");
    }
}

#[test]
fn matrix_add_sub_roundtrip() {
    let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
    let b = Matrix::from_fn(4, 4, |i, j| ((i as i64) - (j as i64)) as f64);
    let sum = &a + &b;
    let back = &sum - &b;
    assert!(back.approx_eq(&a, 1e-12));
}
