//! LU factorisation with partial pivoting.
//!
//! Used to solve the square, fully-determined systems that arise when the
//! equation builder collects exactly `|E|` linearly-independent
//! measurements, and as the building block for matrix inverses and
//! determinants in tests.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::DEFAULT_TOLERANCE;

/// The result of an LU factorisation `P·A = L·U` with partial pivoting.
///
/// The factors are stored compactly: the strictly lower triangle of `lu`
/// holds `L` (with an implicit unit diagonal) and the upper triangle holds
/// `U`. `perm` records the row permutation.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    /// Number of row swaps performed (determines the sign of the
    /// determinant).
    swaps: usize,
    singular: bool,
}

impl LuDecomposition {
    /// Factorises a square matrix.
    ///
    /// Returns an error if the matrix is not square or is empty. A singular
    /// matrix is *not* an error at factorisation time; it is reported by
    /// [`LuDecomposition::is_singular`] and by `solve`.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LuDecomposition::new",
                expected: a.rows(),
                actual: a.cols(),
            });
        }
        if !a.all_finite() {
            return Err(LinalgError::NotFinite);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let mut singular = false;

        for k in 0..n {
            // Find the pivot: the row with the largest absolute value in
            // column k at or below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= DEFAULT_TOLERANCE {
                singular = true;
                continue;
            }
            if pivot_row != k {
                lu.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            swaps,
            singular,
        })
    }

    /// Returns `true` if the matrix was detected to be singular to working
    /// precision.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.lu.rows();
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solves `A x = b` for `x`.
    ///
    /// Returns an error if the matrix is singular or `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "LuDecomposition::solve",
                expected: n,
                actual: b.len(),
            });
        }
        if self.singular {
            return Err(LinalgError::Singular);
        }
        // Apply the permutation: y = P b.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with the unit lower triangle.
        for i in 1..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with the upper triangle.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse of the original matrix.
    ///
    /// Returns an error if the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Reconstructs the unit-lower-triangular factor `L`, so that
    /// `P · A = L · U` (useful in tests).
    pub fn l(&self) -> Matrix {
        let n = self.lu.rows();
        let mut l = Matrix::identity(n);
        for i in 0..n {
            for j in 0..i {
                l[(i, j)] = self.lu[(i, j)];
            }
        }
        l
    }

    /// Reconstructs the upper-triangular factor `U`, so that
    /// `P · A = L · U` (useful in tests).
    pub fn u(&self) -> Matrix {
        let n = self.lu.rows();
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                u[(i, j)] = self.lu[(i, j)];
            }
        }
        u
    }

    /// The row permutation `P` as a row order: row `i` of `P · A` is row
    /// `permutation()[i]` of `A`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

/// Convenience wrapper: solves the square system `A x = b`.
pub fn solve_square(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::approx_eq;

    #[test]
    fn solves_simple_system() {
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_row_slice(2, 2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve_square(&a, &[5.0, 10.0]).unwrap();
        assert!(approx_eq(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot is zero; partial pivoting must kick in.
        let a = Matrix::from_row_slice(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve_square(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_row_slice(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert_eq!(lu.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn determinant_of_known_matrices() {
        let i = Matrix::identity(4);
        assert!((LuDecomposition::new(&i).unwrap().determinant() - 1.0).abs() < 1e-12);

        let a = Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - (-2.0)).abs() < 1e-12);

        let b =
            Matrix::from_row_slice(3, 3, &[2.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((LuDecomposition::new(&b).unwrap().determinant() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a =
            Matrix::from_row_slice(3, 3, &[4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn rejects_non_finite_input() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotFinite)
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solves_larger_random_like_system() {
        // Deterministic, diagonally-dominant 10x10 system.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                20.0 + i as f64
            } else {
                ((i * 7 + j * 3) % 5) as f64 - 2.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 4.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve_square(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-8));
    }
}
