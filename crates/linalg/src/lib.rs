//! # netcorr-linalg — dense numerical substrate
//!
//! The tomography algorithms in `netcorr-core` reduce the inference problem
//! to (possibly under-determined) systems of linear equations over the
//! log-probabilities of links being good (paper, Section 4):
//!
//! ```text
//! y_i  = Σ_{e_k ∈ P_i}        x_k          (single-path equations)
//! y_ij = Σ_{e_k ∈ P_i ∪ P_j}  x_k          (path-pair equations)
//! ```
//!
//! This crate provides everything required to build and solve those systems
//! without any external numerical dependency:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual algebra.
//! * [`lu`] — LU factorisation with partial pivoting (square solves,
//!   determinants, inverses).
//! * [`qr`] — Householder QR factorisation (least-squares solves).
//! * [`lstsq`] — a driver that picks the right solver for the shape/rank of
//!   the system.
//! * [`rank`] — numerical rank estimation and greedy selection of a
//!   linearly-independent subset of rows (used by the equation builder to
//!   keep only independent measurements).
//! * [`simplex`] — a two-phase primal simplex solver for linear programs in
//!   standard form.
//! * [`l1`] — minimum-L1-norm solutions of under-determined systems
//!   (`min ‖x‖₁ s.t. Ax = b`), via the LP formulation; this is the fallback
//!   used by the paper's practical algorithm when fewer than `|E|`
//!   independent equations are available.
//! * [`norms`] — vector norms and small helpers.
//!
//! All routines are deterministic and allocate only `Vec<f64>` storage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod l1;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod rank;
pub mod simplex;
pub mod sparse;

pub use error::LinalgError;
pub use l1::{min_l1_norm_solution, min_l1_norm_solution_nonneg};
pub use lstsq::{solve_least_squares, LeastSquaresSolution};
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use rank::{numerical_rank, select_independent_rows};
pub use simplex::{LinearProgram, LpSolution, LpStatus};
pub use sparse::{cgls, cgls_blocked, cgls_warm, BlockedSparseMatrix, CglsSolution, SparseMatrix};

/// Default relative tolerance used across the crate when comparing floating
/// point magnitudes (rank decisions, pivot checks, ...).
pub const DEFAULT_TOLERANCE: f64 = 1e-10;
