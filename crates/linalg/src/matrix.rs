//! Dense, row-major, `f64` matrix.
//!
//! The matrix type is deliberately small and boring: the tomography systems
//! solved in this workspace have at most a few thousand rows and columns, so
//! a contiguous `Vec<f64>` with straightforward loops is more than adequate
//! and keeps the code easy to audit.

use crate::error::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense matrix of `f64` values stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice of values.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_row_slice(rows: usize, cols: usize, data: &[f64]) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "Matrix::from_row_slice",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Creates a matrix from a list of rows.
    ///
    /// Returns an error if the rows do not all have the same length or if
    /// the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "Matrix::from_rows",
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a column vector (an `n × 1` matrix) from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a diagonal matrix with the given diagonal entries.
    pub fn diagonal(values: &[f64]) -> Self {
        let mut m = Matrix::zeros(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the raw row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a copy of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Returns row `i` as a slice (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `A * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix-matrix product `A * B`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Multiplies every entry by a scalar, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a new matrix scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(s);
        m
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// Returns an error if the row length does not match the column count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "push_row",
                expected: self.cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Returns the sub-matrix made of the given rows (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (new_i, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
            out.data[new_i * self.cols..(new_i + 1) * self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        out
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Element-wise approximate comparison with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in matrix addition");
        assert_eq!(self.cols, rhs.cols, "column mismatch in matrix addition");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in matrix subtraction");
        assert_eq!(self.cols, rhs.cols, "column mismatch in matrix subtraction");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("dimension mismatch in matmul")
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_row_slice_checks_length() {
        assert!(Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).is_ok());
        assert!(matches!(
            Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_checks_shape() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_row_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_computes_product() {
        let a = Matrix::from_row_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matmul_matches_identity() {
        let a = Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);

        let b = Matrix::from_row_slice(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(
            ab,
            Matrix::from_row_slice(2, 2, &[2.0, 1.0, 4.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_and_sub() {
        let a = Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        assert_eq!(sum[(1, 1)], 5.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
    }

    #[test]
    fn rows_columns_and_selection() {
        let a = Matrix::from_row_slice(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.row(1), vec![3.0, 4.0]);
        assert_eq!(a.column(1), vec![2.0, 4.0, 6.0]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), vec![5.0, 6.0]);
        assert_eq!(sel.row(1), vec![1.0, 2.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        m.push_row(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_row_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), vec![3.0, 4.0]);
        assert_eq!(m.row(1), vec![1.0, 2.0]);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_row_slice(1, 2, &[3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.all_finite());

        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.all_finite());
    }

    #[test]
    fn diagonal_and_column_vector() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(2, 2)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
        let v = Matrix::column_vector(&[7.0, 8.0]);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::from_row_slice(1, 2, &[1.0, 2.0]).unwrap();
        let b = Matrix::from_row_slice(1, 2, &[1.0 + 1e-12, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
