//! Minimum-L1-norm solutions of under-determined linear systems.
//!
//! The paper's practical algorithm (Section 4) forms `N1 + N2` linearly
//! independent equations in the `|E|` unknowns `x_k = log P(X_{e_k} = 0)`.
//! When `N1 + N2 < |E|` the system has infinitely many solutions and the
//! paper "picks the one that minimizes the L1 norm". Because each unknown
//! is a log-probability (`x_k ≤ 0`), minimising `‖x‖₁ = −Σ x_k` selects the
//! solution with the highest total probability that links are good, i.e.
//! the least-congestion explanation that is still consistent with every
//! measured equation.
//!
//! Both variants are reduced to standard-form linear programs and solved
//! with [`crate::simplex`]:
//!
//! * [`min_l1_norm_solution`] — free-sign variables, split as `x = u − v`.
//! * [`min_l1_norm_solution_nonneg`] — variables constrained to be
//!   non-negative (used with the substitution `z = −x` for
//!   log-probabilities).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::simplex::{LinearProgram, LpStatus};

/// Solves `min ‖x‖₁ subject to A x = b` with free-sign `x`.
///
/// The variables are split into positive and negative parts `x = u − v`
/// with `u, v ≥ 0` and the LP `min Σ(u + v)` is solved. The equations must
/// be consistent (e.g. linearly independent rows with at least one
/// solution); otherwise [`LinalgError::Infeasible`] is returned.
pub fn min_l1_norm_solution(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "min_l1_norm_solution",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    let n = a.cols();
    let m = a.rows();
    // Constraint matrix [A, -A] over variables [u; v].
    let mut constraints = Matrix::zeros(m, 2 * n);
    for i in 0..m {
        for j in 0..n {
            constraints[(i, j)] = a[(i, j)];
            constraints[(i, n + j)] = -a[(i, j)];
        }
    }
    let objective = vec![1.0; 2 * n];
    let lp = LinearProgram::new(objective, constraints, b.to_vec())?;
    let sol = lp.solve()?;
    match sol.status {
        LpStatus::Optimal => {
            let x = (0..n).map(|j| sol.x[j] - sol.x[n + j]).collect();
            Ok(x)
        }
        LpStatus::Infeasible => Err(LinalgError::Infeasible),
        LpStatus::Unbounded => Err(LinalgError::Unbounded),
    }
}

/// Solves `min Σ x subject to A x = b, x ≥ 0`.
///
/// For non-negative variables the L1 norm is simply the sum, so no variable
/// splitting is needed. Returns [`LinalgError::Infeasible`] if no
/// non-negative solution exists.
pub fn min_l1_norm_solution_nonneg(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "min_l1_norm_solution_nonneg",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    let objective = vec![1.0; a.cols()];
    let lp = LinearProgram::new(objective, a.clone(), b.to_vec())?;
    let sol = lp.solve()?;
    match sol.status {
        LpStatus::Optimal => Ok(sol.x),
        LpStatus::Infeasible => Err(LinalgError::Infeasible),
        LpStatus::Unbounded => Err(LinalgError::Unbounded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{approx_eq, l1_norm};

    #[test]
    fn recovers_sparse_solution_of_underdetermined_system() {
        // One equation, two unknowns: x1 + 2 x2 = 2.
        // Minimum-L1 solution is x = (0, 1) with ‖x‖₁ = 1 (vs (2, 0) with 2).
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let x = min_l1_norm_solution(&a, &[2.0]).unwrap();
        assert!(approx_eq(&x, &[0.0, 1.0], 1e-7), "got {x:?}");
    }

    #[test]
    fn satisfies_constraints_exactly() {
        // Two equations, four unknowns.
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 1.0, 1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0];
        let x = min_l1_norm_solution(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(approx_eq(&ax, &b, 1e-7), "Ax = {ax:?}");
        // Any feasible point has ‖x‖₁ >= the optimum; check against one
        // hand-picked feasible point.
        let feasible = [1.0, 0.0, 2.0, 0.0];
        assert!(l1_norm(&x) <= l1_norm(&feasible) + 1e-7);
    }

    #[test]
    fn handles_negative_solutions() {
        // x1 + x2 = -3: the minimum-L1 solution puts everything on one
        // variable with a negative value.
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let x = min_l1_norm_solution(&a, &[-3.0]).unwrap();
        assert!((l1_norm(&x) - 3.0).abs() < 1e-7);
        assert!((x[0] + x[1] + 3.0).abs() < 1e-7);
    }

    #[test]
    fn square_consistent_system_returns_exact_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let x = min_l1_norm_solution(&a, &[2.0, -8.0]).unwrap();
        assert!(approx_eq(&x, &[1.0, -2.0], 1e-7));
    }

    #[test]
    fn inconsistent_system_is_infeasible() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(
            min_l1_norm_solution(&a, &[1.0, 2.0]),
            Err(LinalgError::Infeasible)
        );
    }

    #[test]
    fn nonneg_variant_respects_sign_constraint() {
        // x1 - x2 = 1, x >= 0: minimum-sum solution is (1, 0).
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let x = min_l1_norm_solution_nonneg(&a, &[1.0]).unwrap();
        assert!(approx_eq(&x, &[1.0, 0.0], 1e-7));
        // b = -1 has no non-negative solution with this single equation
        // where only x2 could help: x1 - x2 = -1 -> x2 = 1 + x1 works, so it
        // IS feasible; check a genuinely infeasible one instead.
        let a2 = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        assert_eq!(
            min_l1_norm_solution_nonneg(&a2, &[-1.0]),
            Err(LinalgError::Infeasible)
        );
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            min_l1_norm_solution(&a, &[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            min_l1_norm_solution_nonneg(&a, &[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn larger_underdetermined_system_prefers_sparse_answer() {
        // 3 equations, 8 unknowns, constructed so that a 3-sparse solution
        // exists; basis-pursuit (min L1) should find a solution with the
        // same L1 norm or better and satisfy the constraints.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.5, 0.2],
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.1, 0.9],
            vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.7, 0.3],
        ])
        .unwrap();
        let sparse = [2.0, 0.0, 0.0, 0.0, 0.0, 1.5, 0.0, 0.0];
        let b = a.matvec(&sparse).unwrap();
        let x = min_l1_norm_solution(&a, &b).unwrap();
        assert!(approx_eq(&a.matvec(&x).unwrap(), &b, 1e-6));
        assert!(l1_norm(&x) <= l1_norm(&sparse) + 1e-6);
    }
}
