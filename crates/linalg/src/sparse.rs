//! Sparse row matrices and the CGLS iterative least-squares solver.
//!
//! The measurement systems produced by the tomography equation builder are
//! extremely sparse: each equation touches only the links of one path (or
//! of a pair of paths), i.e. a handful of non-zeros out of thousands of
//! columns. At the paper's scale (≈2000 links, ≈1500 paths) dense
//! factorisations are needlessly expensive, so the large-system solver path
//! uses:
//!
//! * [`SparseMatrix`] — a compressed row representation with `matvec` /
//!   `transpose_matvec`;
//! * [`cgls`] — Conjugate Gradient on the normal equations (CGLS), with an
//!   optional Tikhonov (ridge) term `λ‖x‖²` that makes the solution unique
//!   and small when the system is under-determined. For log-probability
//!   unknowns (which are ≤ 0) the small-norm bias plays the same role as
//!   the paper's minimum-L1-norm choice: unconstrained links are pushed
//!   towards "good".

use crate::error::LinalgError;
use crate::norms::l2_norm;

/// A sparse matrix stored as rows of `(column, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    cols: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseMatrix {
    /// Creates an empty sparse matrix with `cols` columns and no rows.
    pub fn new(cols: usize) -> Self {
        SparseMatrix {
            cols,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Appends a row given as `(column, value)` pairs. Entries with a zero
    /// value are dropped; duplicate columns are summed.
    ///
    /// Returns an error if any column index is out of range.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) -> Result<(), LinalgError> {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        for &(col, value) in entries {
            if col >= self.cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "SparseMatrix::push_row",
                    expected: self.cols,
                    actual: col,
                });
            }
            if !value.is_finite() {
                return Err(LinalgError::NotFinite);
            }
            if value == 0.0 {
                continue;
            }
            match row.iter_mut().find(|(c, _)| *c == col) {
                Some((_, v)) => *v += value,
                None => row.push((col, value)),
            }
        }
        row.sort_unstable_by_key(|&(c, _)| c);
        self.rows.push(row);
        Ok(())
    }

    /// Appends a row whose entries are `1.0` at the given column indices
    /// (the common case for path-incidence equations).
    pub fn push_indicator_row(&mut self, columns: &[usize]) -> Result<(), LinalgError> {
        let entries: Vec<(usize, f64)> = columns.iter().map(|&c| (c, 1.0)).collect();
        self.push_row(&entries)
    }

    /// Returns the entries of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Computes `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "SparseMatrix::matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * x[c]).sum())
            .collect())
    }

    /// Computes `y = Aᵀ x`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "SparseMatrix::transpose_matvec",
                expected: self.rows.len(),
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (row, &xi) in self.rows.iter().zip(x.iter()) {
            if xi == 0.0 {
                continue;
            }
            for &(c, v) in row {
                y[c] += v * xi;
            }
        }
        Ok(y)
    }

    /// Converts to a dense [`crate::Matrix`] (for tests and small systems).
    pub fn to_dense(&self) -> crate::Matrix {
        let mut dense = crate::Matrix::zeros(self.rows.len(), self.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for &(c, v) in row {
                dense[(i, c)] = v;
            }
        }
        dense
    }
}

/// The result of a CGLS solve.
#[derive(Debug, Clone)]
pub struct CglsSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖Ax − b‖₂` (of the unregularised residual).
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `min_x ‖A x − b‖² + λ‖x‖²` with Conjugate Gradient on the normal
/// equations (CGLS). `λ = 0` gives plain least squares; a small positive
/// `λ` regularises rank-deficient / under-determined systems towards the
/// minimum-norm solution.
pub fn cgls(
    a: &SparseMatrix,
    b: &[f64],
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
) -> Result<CglsSolution, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            operation: "cgls",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    if lambda < 0.0 || !lambda.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    if !crate::norms::all_finite(b) {
        return Err(LinalgError::NotFinite);
    }
    let n = a.cols();
    let mut x = vec![0.0; n];
    // r = b - A x = b initially.
    let mut r = b.to_vec();
    // s = Aᵀ r - λ x = Aᵀ b initially.
    let mut s = a.transpose_matvec(&r)?;
    let mut p = s.clone();
    let mut gamma: f64 = s.iter().map(|v| v * v).sum();
    let b_norm = l2_norm(b).max(1e-30);
    let mut iterations = 0;
    let mut converged = gamma.sqrt() <= tolerance * b_norm;

    while iterations < max_iterations && !converged {
        let q = a.matvec(&p)?;
        let q_norm_sq: f64 = q.iter().map(|v| v * v).sum();
        let p_norm_sq: f64 = p.iter().map(|v| v * v).sum();
        let denom = q_norm_sq + lambda * p_norm_sq;
        if denom <= 0.0 {
            break;
        }
        let alpha = gamma / denom;
        for (xi, pi) in x.iter_mut().zip(p.iter()) {
            *xi += alpha * pi;
        }
        for (ri, qi) in r.iter_mut().zip(q.iter()) {
            *ri -= alpha * qi;
        }
        s = a.transpose_matvec(&r)?;
        if lambda > 0.0 {
            for (si, xi) in s.iter_mut().zip(x.iter()) {
                *si -= lambda * xi;
            }
        }
        let gamma_new: f64 = s.iter().map(|v| v * v).sum();
        converged = gamma_new.sqrt() <= tolerance * b_norm;
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        for (pi, si) in p.iter_mut().zip(s.iter()) {
            *pi = si + beta * *pi;
        }
        iterations += 1;
    }

    let residual = {
        let ax = a.matvec(&x)?;
        l2_norm(&crate::norms::sub(&ax, b))
    };
    Ok(CglsSolution {
        x,
        iterations,
        residual,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::approx_eq;

    fn sparse_from_dense(rows: &[Vec<f64>]) -> SparseMatrix {
        let cols = rows[0].len();
        let mut m = SparseMatrix::new(cols);
        for row in rows {
            let entries: Vec<(usize, f64)> = row
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(c, &v)| (c, v))
                .collect();
            m.push_row(&entries).unwrap();
        }
        m
    }

    #[test]
    fn construction_and_accessors() {
        let mut m = SparseMatrix::new(4);
        m.push_indicator_row(&[0, 2]).unwrap();
        m.push_row(&[(1, 2.0), (1, 3.0), (3, 0.0)]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(1), &[(1, 5.0)]);
        let dense = m.to_dense();
        assert_eq!(dense[(0, 0)], 1.0);
        assert_eq!(dense[(0, 2)], 1.0);
        assert_eq!(dense[(1, 1)], 5.0);
    }

    #[test]
    fn rejects_bad_rows() {
        let mut m = SparseMatrix::new(2);
        assert!(m.push_row(&[(5, 1.0)]).is_err());
        assert!(m.push_row(&[(0, f64::NAN)]).is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sparse_from_dense(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
        let z = m.transpose_matvec(&[1.0, 2.0]).unwrap();
        assert_eq!(z, vec![1.0, 6.0, 2.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.transpose_matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn cgls_solves_square_system() {
        let m = sparse_from_dense(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let sol = cgls(&m, &[5.0, 10.0], 0.0, 100, 1e-12).unwrap();
        assert!(approx_eq(&sol.x, &[1.0, 3.0], 1e-8), "{:?}", sol.x);
        assert!(sol.converged);
        assert!(sol.residual < 1e-7);
    }

    #[test]
    fn cgls_solves_overdetermined_consistent_system() {
        let m = sparse_from_dense(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
        ]);
        let x_true = [2.0, -3.0];
        let b: Vec<f64> = m.matvec(&x_true).unwrap();
        let sol = cgls(&m, &b, 0.0, 200, 1e-12).unwrap();
        assert!(approx_eq(&sol.x, &x_true, 1e-8));
    }

    #[test]
    fn cgls_matches_dense_least_squares_on_inconsistent_system() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ];
        let m = sparse_from_dense(&rows);
        let b = [0.9, 3.2, 4.9, 7.3];
        let sparse_sol = cgls(&m, &b, 0.0, 500, 1e-14).unwrap();
        let dense = crate::Matrix::from_rows(&rows).unwrap();
        let dense_sol = crate::lstsq::solve_least_squares(&dense, &b).unwrap();
        assert!(approx_eq(&sparse_sol.x, &dense_sol.x, 1e-6));
    }

    #[test]
    fn ridge_term_shrinks_underdetermined_solutions() {
        // One equation, two unknowns: x0 + x1 = 2. CGLS from x = 0 with a
        // ridge converges to (≈1, ≈1), the minimum-norm solution.
        let m = sparse_from_dense(&[vec![1.0, 1.0]]);
        let sol = cgls(&m, &[2.0], 1e-8, 200, 1e-14).unwrap();
        assert!(approx_eq(&sol.x, &[1.0, 1.0], 1e-4), "{:?}", sol.x);
    }

    #[test]
    fn cgls_handles_larger_sparse_incidence_systems() {
        // Build a 300-row, 120-column random-ish 0/1 incidence system with
        // a known solution and check recovery.
        let cols = 120;
        let mut m = SparseMatrix::new(cols);
        let mut state = 12345u64;
        let mut next = || {
            // Small deterministic LCG, avoids pulling rand into this crate.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..300 {
            let len = 3 + next() % 5;
            let columns: Vec<usize> = (0..len).map(|_| next() % cols).collect();
            m.push_indicator_row(&columns).unwrap();
        }
        let x_true: Vec<f64> = (0..cols).map(|i| -((i % 7) as f64) / 10.0).collect();
        let b = m.matvec(&x_true).unwrap();
        let sol = cgls(&m, &b, 0.0, 2000, 1e-12).unwrap();
        let residual = {
            let ax = m.matvec(&sol.x).unwrap();
            l2_norm(&crate::norms::sub(&ax, &b))
        };
        assert!(residual < 1e-6, "residual {residual}");
    }

    #[test]
    fn cgls_rejects_bad_inputs() {
        let m = sparse_from_dense(&[vec![1.0, 0.0]]);
        assert!(cgls(&m, &[1.0, 2.0], 0.0, 10, 1e-9).is_err());
        assert!(cgls(&m, &[1.0], -1.0, 10, 1e-9).is_err());
        assert!(cgls(&m, &[f64::NAN], 0.0, 10, 1e-9).is_err());
    }

    #[test]
    fn zero_iteration_budget_returns_zero_vector() {
        let m = sparse_from_dense(&[vec![1.0, 1.0]]);
        let sol = cgls(&m, &[2.0], 0.0, 0, 1e-12).unwrap();
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert!(!sol.converged);
        assert_eq!(sol.iterations, 0);
    }
}
