//! Sparse row matrices and the CGLS iterative least-squares solver.
//!
//! The measurement systems produced by the tomography equation builder are
//! extremely sparse: each equation touches only the links of one path (or
//! of a pair of paths), i.e. a handful of non-zeros out of thousands of
//! columns. At the paper's scale (≈2000 links, ≈1500 paths) dense
//! factorisations are needlessly expensive, so the large-system solver path
//! uses:
//!
//! * [`SparseMatrix`] — a compressed row representation with `matvec` /
//!   `transpose_matvec`;
//! * [`cgls`] — Conjugate Gradient on the normal equations (CGLS), with an
//!   optional Tikhonov (ridge) term `λ‖x‖²` that makes the solution unique
//!   and small when the system is under-determined. For log-probability
//!   unknowns (which are ≤ 0) the small-norm bias plays the same role as
//!   the paper's minimum-L1-norm choice: unconstrained links are pushed
//!   towards "good".

use crate::error::LinalgError;
use crate::norms::l2_norm;

/// A sparse matrix stored as rows of `(column, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    cols: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseMatrix {
    /// Creates an empty sparse matrix with `cols` columns and no rows.
    pub fn new(cols: usize) -> Self {
        SparseMatrix {
            cols,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Appends a row given as `(column, value)` pairs. Entries with a zero
    /// value are dropped; duplicate columns are summed.
    ///
    /// Returns an error if any column index is out of range.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) -> Result<(), LinalgError> {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        for &(col, value) in entries {
            if col >= self.cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "SparseMatrix::push_row",
                    expected: self.cols,
                    actual: col,
                });
            }
            if !value.is_finite() {
                return Err(LinalgError::NotFinite);
            }
            if value == 0.0 {
                continue;
            }
            match row.iter_mut().find(|(c, _)| *c == col) {
                Some((_, v)) => *v += value,
                None => row.push((col, value)),
            }
        }
        row.sort_unstable_by_key(|&(c, _)| c);
        self.rows.push(row);
        Ok(())
    }

    /// Appends a row whose entries are `1.0` at the given column indices
    /// (the common case for path-incidence equations).
    pub fn push_indicator_row(&mut self, columns: &[usize]) -> Result<(), LinalgError> {
        let entries: Vec<(usize, f64)> = columns.iter().map(|&c| (c, 1.0)).collect();
        self.push_row(&entries)
    }

    /// Returns the entries of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Computes `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "SparseMatrix::matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * x[c]).sum())
            .collect())
    }

    /// Computes `y = Aᵀ x`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "SparseMatrix::transpose_matvec",
                expected: self.rows.len(),
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (row, &xi) in self.rows.iter().zip(x.iter()) {
            if xi == 0.0 {
                continue;
            }
            for &(c, v) in row {
                y[c] += v * xi;
            }
        }
        Ok(y)
    }

    /// Converts to a dense [`crate::Matrix`] (for tests and small systems).
    pub fn to_dense(&self) -> crate::Matrix {
        let mut dense = crate::Matrix::zeros(self.rows.len(), self.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for &(c, v) in row {
                dense[(i, c)] = v;
            }
        }
        dense
    }

    /// Flattens into the blocked CSR form used by the iterative solver
    /// hot loop.
    pub fn to_blocked(&self) -> BlockedSparseMatrix {
        BlockedSparseMatrix::from_sparse(self)
    }
}

/// Number of rows a [`BlockedSparseMatrix`] product processes per block.
/// Small enough that a block's slice of the flat `(col, value)` arrays and
/// its output window fit in L1/L2 alongside the dense operand.
const ROW_BLOCK: usize = 128;

/// A [`SparseMatrix`] flattened into compressed-sparse-row (CSR) arrays
/// and multiplied block-of-rows at a time.
///
/// The row-of-`Vec`s layout of [`SparseMatrix`] is convenient to build
/// incrementally but costs one pointer chase per row in the CGLS hot loop
/// (two matvecs per iteration, thousands of iterations). The blocked form
/// stores every `(column, value)` pair in two flat arrays indexed by a
/// `row_ptr` offset table, and walks them [`ROW_BLOCK`] rows per step, so
/// the traversal is a single forward stream over contiguous memory.
///
/// Products accumulate per row in exactly the stored column order, so the
/// results are **bit-identical** to [`SparseMatrix::matvec`] /
/// [`SparseMatrix::transpose_matvec`] — swapping the representation under
/// an iterative solver never changes its iterates.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedSparseMatrix {
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl BlockedSparseMatrix {
    /// Flattens a [`SparseMatrix`] into CSR arrays.
    pub fn from_sparse(source: &SparseMatrix) -> Self {
        let nnz = source.nnz();
        let mut row_ptr = Vec::with_capacity(source.rows() + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in &source.rows {
            for &(c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        BlockedSparseMatrix {
            cols: source.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Computes `y = A x` into a caller-provided buffer of length
    /// [`BlockedSparseMatrix::rows`] (no per-call allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "BlockedSparseMatrix::matvec_into",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let rows = self.rows();
        if y.len() != rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "BlockedSparseMatrix::matvec_into (output)",
                expected: rows,
                actual: y.len(),
            });
        }
        let mut block_start = 0;
        while block_start < rows {
            let block_end = (block_start + ROW_BLOCK).min(rows);
            for i in block_start..block_end {
                let mut acc = 0.0;
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                y[i] = acc;
            }
            block_start = block_end;
        }
        Ok(())
    }

    /// Computes `y = Aᵀ x` into a caller-provided buffer of length
    /// [`BlockedSparseMatrix::cols`] (no per-call allocation).
    pub fn transpose_matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        let rows = self.rows();
        if x.len() != rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "BlockedSparseMatrix::transpose_matvec_into",
                expected: rows,
                actual: x.len(),
            });
        }
        if y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "BlockedSparseMatrix::transpose_matvec_into (output)",
                expected: self.cols,
                actual: y.len(),
            });
        }
        y.iter_mut().for_each(|v| *v = 0.0);
        let mut block_start = 0;
        while block_start < rows {
            let block_end = (block_start + ROW_BLOCK).min(rows);
            for i in block_start..block_end {
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    y[self.col_idx[k]] += self.values[k] * xi;
                }
            }
            block_start = block_end;
        }
        Ok(())
    }
}

/// The result of a CGLS solve.
#[derive(Debug, Clone)]
pub struct CglsSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖Ax − b‖₂` (of the unregularised residual).
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `min_x ‖A x − b‖² + λ‖x‖²` with Conjugate Gradient on the normal
/// equations (CGLS). `λ = 0` gives plain least squares; a small positive
/// `λ` regularises rank-deficient / under-determined systems towards the
/// minimum-norm solution.
pub fn cgls(
    a: &SparseMatrix,
    b: &[f64],
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
) -> Result<CglsSolution, LinalgError> {
    cgls_blocked(&a.to_blocked(), b, lambda, max_iterations, tolerance, None)
}

/// [`cgls`] with an optional initial guess (warm start).
///
/// `initial = None` starts from the zero vector and is exactly [`cgls`].
/// With `initial = Some(x₀)` the iteration starts from `x₀` — when
/// consecutive solves share the matrix and have nearby right-hand sides
/// (successive trials on one topology, or successive refreshes of a
/// measurement stream), seeding with the previous solution cuts the
/// iterations to convergence substantially. The minimiser is the same
/// either way for determined systems; for ridge-regularised
/// under-determined systems the limit point is the unique regularised
/// minimiser, so warm and cold starts agree to within the solve tolerance.
pub fn cgls_warm(
    a: &SparseMatrix,
    b: &[f64],
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
    initial: Option<&[f64]>,
) -> Result<CglsSolution, LinalgError> {
    cgls_blocked(
        &a.to_blocked(),
        b,
        lambda,
        max_iterations,
        tolerance,
        initial,
    )
}

/// [`cgls_warm`] over a pre-flattened [`BlockedSparseMatrix`] — the entry
/// point for callers that solve many right-hand sides against one matrix
/// and want to pay the flattening cost once.
pub fn cgls_blocked(
    a: &BlockedSparseMatrix,
    b: &[f64],
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
    initial: Option<&[f64]>,
) -> Result<CglsSolution, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            operation: "cgls",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    if lambda < 0.0 || !lambda.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    if !crate::norms::all_finite(b) {
        return Err(LinalgError::NotFinite);
    }
    let n = a.cols();
    let mut x = match initial {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    operation: "cgls (initial guess)",
                    expected: n,
                    actual: x0.len(),
                });
            }
            if !crate::norms::all_finite(x0) {
                return Err(LinalgError::NotFinite);
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut q = vec![0.0; a.rows()];
    let mut s = vec![0.0; n];
    // r = b - A x (just b for a cold start — skipping the product keeps
    // the cold path bit-identical to the historical implementation).
    let mut r = b.to_vec();
    if initial.is_some() {
        a.matvec_into(&x, &mut q)?;
        for (ri, qi) in r.iter_mut().zip(q.iter()) {
            *ri -= qi;
        }
    }
    // s = Aᵀ r - λ x.
    a.transpose_matvec_into(&r, &mut s)?;
    if lambda > 0.0 && initial.is_some() {
        for (si, xi) in s.iter_mut().zip(x.iter()) {
            *si -= lambda * xi;
        }
    }
    let mut p = s.clone();
    let mut gamma: f64 = s.iter().map(|v| v * v).sum();
    let b_norm = l2_norm(b).max(1e-30);
    let mut iterations = 0;
    let mut converged = gamma.sqrt() <= tolerance * b_norm;

    while iterations < max_iterations && !converged {
        a.matvec_into(&p, &mut q)?;
        let q_norm_sq: f64 = q.iter().map(|v| v * v).sum();
        let p_norm_sq: f64 = p.iter().map(|v| v * v).sum();
        let denom = q_norm_sq + lambda * p_norm_sq;
        if denom <= 0.0 {
            break;
        }
        let alpha = gamma / denom;
        for (xi, pi) in x.iter_mut().zip(p.iter()) {
            *xi += alpha * pi;
        }
        for (ri, qi) in r.iter_mut().zip(q.iter()) {
            *ri -= alpha * qi;
        }
        a.transpose_matvec_into(&r, &mut s)?;
        if lambda > 0.0 {
            for (si, xi) in s.iter_mut().zip(x.iter()) {
                *si -= lambda * xi;
            }
        }
        let gamma_new: f64 = s.iter().map(|v| v * v).sum();
        converged = gamma_new.sqrt() <= tolerance * b_norm;
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        for (pi, si) in p.iter_mut().zip(s.iter()) {
            *pi = si + beta * *pi;
        }
        iterations += 1;
    }

    let residual = {
        a.matvec_into(&x, &mut q)?;
        let mut sum = 0.0;
        for (axi, bi) in q.iter().zip(b.iter()) {
            let d = axi - bi;
            sum += d * d;
        }
        sum.sqrt()
    };
    Ok(CglsSolution {
        x,
        iterations,
        residual,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::approx_eq;

    fn sparse_from_dense(rows: &[Vec<f64>]) -> SparseMatrix {
        let cols = rows[0].len();
        let mut m = SparseMatrix::new(cols);
        for row in rows {
            let entries: Vec<(usize, f64)> = row
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(c, &v)| (c, v))
                .collect();
            m.push_row(&entries).unwrap();
        }
        m
    }

    #[test]
    fn construction_and_accessors() {
        let mut m = SparseMatrix::new(4);
        m.push_indicator_row(&[0, 2]).unwrap();
        m.push_row(&[(1, 2.0), (1, 3.0), (3, 0.0)]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(1), &[(1, 5.0)]);
        let dense = m.to_dense();
        assert_eq!(dense[(0, 0)], 1.0);
        assert_eq!(dense[(0, 2)], 1.0);
        assert_eq!(dense[(1, 1)], 5.0);
    }

    #[test]
    fn rejects_bad_rows() {
        let mut m = SparseMatrix::new(2);
        assert!(m.push_row(&[(5, 1.0)]).is_err());
        assert!(m.push_row(&[(0, f64::NAN)]).is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sparse_from_dense(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
        let z = m.transpose_matvec(&[1.0, 2.0]).unwrap();
        assert_eq!(z, vec![1.0, 6.0, 2.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.transpose_matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn cgls_solves_square_system() {
        let m = sparse_from_dense(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let sol = cgls(&m, &[5.0, 10.0], 0.0, 100, 1e-12).unwrap();
        assert!(approx_eq(&sol.x, &[1.0, 3.0], 1e-8), "{:?}", sol.x);
        assert!(sol.converged);
        assert!(sol.residual < 1e-7);
    }

    #[test]
    fn cgls_solves_overdetermined_consistent_system() {
        let m = sparse_from_dense(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
        ]);
        let x_true = [2.0, -3.0];
        let b: Vec<f64> = m.matvec(&x_true).unwrap();
        let sol = cgls(&m, &b, 0.0, 200, 1e-12).unwrap();
        assert!(approx_eq(&sol.x, &x_true, 1e-8));
    }

    #[test]
    fn cgls_matches_dense_least_squares_on_inconsistent_system() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ];
        let m = sparse_from_dense(&rows);
        let b = [0.9, 3.2, 4.9, 7.3];
        let sparse_sol = cgls(&m, &b, 0.0, 500, 1e-14).unwrap();
        let dense = crate::Matrix::from_rows(&rows).unwrap();
        let dense_sol = crate::lstsq::solve_least_squares(&dense, &b).unwrap();
        assert!(approx_eq(&sparse_sol.x, &dense_sol.x, 1e-6));
    }

    #[test]
    fn ridge_term_shrinks_underdetermined_solutions() {
        // One equation, two unknowns: x0 + x1 = 2. CGLS from x = 0 with a
        // ridge converges to (≈1, ≈1), the minimum-norm solution.
        let m = sparse_from_dense(&[vec![1.0, 1.0]]);
        let sol = cgls(&m, &[2.0], 1e-8, 200, 1e-14).unwrap();
        assert!(approx_eq(&sol.x, &[1.0, 1.0], 1e-4), "{:?}", sol.x);
    }

    #[test]
    fn cgls_handles_larger_sparse_incidence_systems() {
        // Build a 300-row, 120-column random-ish 0/1 incidence system with
        // a known solution and check recovery.
        let cols = 120;
        let mut m = SparseMatrix::new(cols);
        let mut state = 12345u64;
        let mut next = || {
            // Small deterministic LCG, avoids pulling rand into this crate.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..300 {
            let len = 3 + next() % 5;
            let columns: Vec<usize> = (0..len).map(|_| next() % cols).collect();
            m.push_indicator_row(&columns).unwrap();
        }
        let x_true: Vec<f64> = (0..cols).map(|i| -((i % 7) as f64) / 10.0).collect();
        let b = m.matvec(&x_true).unwrap();
        let sol = cgls(&m, &b, 0.0, 2000, 1e-12).unwrap();
        let residual = {
            let ax = m.matvec(&sol.x).unwrap();
            l2_norm(&crate::norms::sub(&ax, &b))
        };
        assert!(residual < 1e-6, "residual {residual}");
    }

    #[test]
    fn cgls_rejects_bad_inputs() {
        let m = sparse_from_dense(&[vec![1.0, 0.0]]);
        assert!(cgls(&m, &[1.0, 2.0], 0.0, 10, 1e-9).is_err());
        assert!(cgls(&m, &[1.0], -1.0, 10, 1e-9).is_err());
        assert!(cgls(&m, &[f64::NAN], 0.0, 10, 1e-9).is_err());
    }

    #[test]
    fn blocked_form_matches_the_row_representation_bitwise() {
        // A system larger than one ROW_BLOCK so the block loop takes
        // several steps, with irregular row lengths and values that
        // exercise rounding (no exact binary representations).
        let cols = 37;
        let mut m = SparseMatrix::new(cols);
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..300 {
            let len = 1 + next() % 6;
            let entries: Vec<(usize, f64)> = (0..len)
                .map(|_| (next() % cols, 0.1 + (next() % 100) as f64 / 30.0))
                .collect();
            m.push_row(&entries).unwrap();
        }
        let blocked = m.to_blocked();
        assert_eq!(blocked.rows(), m.rows());
        assert_eq!(blocked.cols(), m.cols());
        assert_eq!(blocked.nnz(), m.nnz());
        let x: Vec<f64> = (0..cols).map(|i| (i as f64 / 7.0).sin()).collect();
        let mut y = vec![0.0; m.rows()];
        blocked.matvec_into(&x, &mut y).unwrap();
        assert_eq!(y, m.matvec(&x).unwrap(), "matvec must be bit-identical");
        let w: Vec<f64> = (0..m.rows())
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    (i as f64 / 3.0).cos()
                }
            })
            .collect();
        let mut z = vec![0.0; cols];
        blocked.transpose_matvec_into(&w, &mut z).unwrap();
        assert_eq!(
            z,
            m.transpose_matvec(&w).unwrap(),
            "transpose matvec must be bit-identical"
        );
        // Dimension errors are reported, not panicked.
        assert!(blocked.matvec_into(&[1.0], &mut y).is_err());
        assert!(blocked.matvec_into(&x, &mut [0.0]).is_err());
        assert!(blocked.transpose_matvec_into(&[1.0], &mut z).is_err());
        assert!(blocked.transpose_matvec_into(&w, &mut [0.0]).is_err());
    }

    #[test]
    fn warm_start_from_zeros_is_bit_identical_to_cold() {
        let m = sparse_from_dense(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 0.5],
            vec![1.0, 1.0, 1.0],
            vec![0.7, 0.0, 0.0],
        ]);
        let b = [0.9, 3.2, 4.9, 7.3];
        let cold = cgls(&m, &b, 1e-8, 200, 1e-13).unwrap();
        let zeros = vec![0.0; 3];
        let warm = cgls_warm(&m, &b, 1e-8, 200, 1e-13, Some(&zeros)).unwrap();
        // The zero guess triggers the r = b - A·0 path; the arithmetic is
        // the same, so iterates and solution agree exactly.
        assert_eq!(cold.x, warm.x);
        assert_eq!(cold.iterations, warm.iterations);
    }

    #[test]
    fn warm_start_from_the_solution_converges_immediately() {
        let m = sparse_from_dense(&[vec![2.0, 1.0], vec![1.0, 3.0], vec![0.5, 0.5]]);
        let x_true = [1.0, 3.0];
        let b = m.matvec(&x_true).unwrap();
        let cold = cgls(&m, &b, 0.0, 200, 1e-12).unwrap();
        assert!(cold.iterations > 0);
        let warm = cgls_warm(&m, &b, 0.0, 200, 1e-12, Some(&cold.x)).unwrap();
        assert_eq!(warm.iterations, 0, "the exact solution needs no iterations");
        assert_eq!(warm.x, cold.x);
        assert!(warm.converged);
    }

    #[test]
    fn warm_start_from_a_nearby_solution_matches_cold_within_tolerance() {
        // Perturbed right-hand side: warm starting from the solution of
        // the unperturbed system converges to the same minimiser as a
        // cold start, in fewer iterations.
        let cols = 80;
        let mut m = SparseMatrix::new(cols);
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let len = 2 + next() % 4;
            let columns: Vec<usize> = (0..len).map(|_| next() % cols).collect();
            m.push_indicator_row(&columns).unwrap();
        }
        let x_true: Vec<f64> = (0..cols).map(|i| -((i % 5) as f64) / 8.0).collect();
        let b = m.matvec(&x_true).unwrap();
        let base = cgls(&m, &b, 1e-8, 4000, 1e-12).unwrap();
        let b_shifted: Vec<f64> = b.iter().map(|v| v + 0.01).collect();
        let cold = cgls(&m, &b_shifted, 1e-8, 4000, 1e-12).unwrap();
        let warm = cgls_warm(&m, &b_shifted, 1e-8, 4000, 1e-12, Some(&base.x)).unwrap();
        assert!(cold.converged && warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        assert!(
            approx_eq(&warm.x, &cold.x, 1e-6),
            "warm and cold must agree on the minimiser"
        );
    }

    #[test]
    fn warm_start_rejects_bad_initial_guesses() {
        let m = sparse_from_dense(&[vec![1.0, 1.0]]);
        assert!(cgls_warm(&m, &[2.0], 0.0, 10, 1e-9, Some(&[1.0])).is_err());
        assert!(cgls_warm(&m, &[2.0], 0.0, 10, 1e-9, Some(&[f64::NAN, 0.0])).is_err());
    }

    #[test]
    fn zero_iteration_budget_returns_zero_vector() {
        let m = sparse_from_dense(&[vec![1.0, 1.0]]);
        let sol = cgls(&m, &[2.0], 0.0, 0, 1e-12).unwrap();
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert!(!sol.converged);
        assert_eq!(sol.iterations, 0);
    }
}
