//! Vector norms and small numerical helpers.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L∞ norm (maximum absolute value); 0 for an empty slice.
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Component-wise `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "subtraction length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Component-wise `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "addition length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Scales a slice by `s`, returning a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Returns `true` if all entries are finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// Returns `true` if `|a - b| <= tol` component-wise.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert_eq!(l1_norm(&v), 7.0);
        assert!((l2_norm(&v) - 5.0).abs() < 1e-12);
        assert_eq!(linf_norm(&v), 4.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
    }

    #[test]
    fn finiteness_and_approx() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::INFINITY]));
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
    }
}
