//! Error type shared by all solvers in the crate.

use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands have incompatible dimensions (e.g. `A * x` with
    /// `A.cols() != x.len()`).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension that was actually supplied.
        actual: usize,
    },
    /// The matrix is singular (or numerically singular) and the requested
    /// operation (solve, inverse) is not defined.
    Singular,
    /// The linear program is infeasible: no point satisfies the constraints.
    Infeasible,
    /// The linear program is unbounded: the objective can be decreased
    /// without limit.
    Unbounded,
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained a non-finite value (NaN or ±∞).
    NotFinite,
    /// A matrix or vector argument was empty where a non-empty one is
    /// required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, got {actual}"
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::Infeasible => write!(f, "linear program is infeasible"),
            LinalgError::Unbounded => write!(f, "linear program is unbounded"),
            LinalgError::DidNotConverge { iterations } => {
                write!(f, "did not converge after {iterations} iterations")
            }
            LinalgError::NotFinite => write!(f, "input contains NaN or infinite values"),
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            operation: "matvec",
            expected: 3,
            actual: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("matvec"));
        assert!(msg.contains('3'));
        assert!(msg.contains('4'));

        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::Infeasible.to_string().contains("infeasible"));
        assert!(LinalgError::Unbounded.to_string().contains("unbounded"));
        assert!(LinalgError::NotFinite.to_string().contains("NaN"));
        assert!(LinalgError::Empty.to_string().contains("empty"));
        assert!(LinalgError::DidNotConverge { iterations: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Singular, LinalgError::Singular);
        assert_ne!(LinalgError::Singular, LinalgError::Infeasible);
    }
}
