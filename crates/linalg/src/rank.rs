//! Numerical rank estimation and greedy selection of independent rows.
//!
//! The equation builder in `netcorr-core` enumerates candidate measurement
//! equations (one per usable path and per usable path pair) and must keep
//! only a linearly-independent subset — the paper's `N1` single-path
//! equations and `N2` pair equations. [`select_independent_rows`] performs
//! that selection incrementally with a Gram–Schmidt sweep so that candidate
//! rows can be considered in a caller-chosen priority order.

use crate::matrix::Matrix;
use crate::norms::{dot, l2_norm};

/// Estimates the numerical rank of a matrix by Gaussian elimination with
/// partial pivoting and the relative tolerance `tol`.
pub fn numerical_rank(a: &Matrix, tol: f64) -> usize {
    if a.is_empty() {
        return 0;
    }
    let mut m = a.clone();
    let rows = m.rows();
    let cols = m.cols();
    let scale = m.max_abs();
    if scale == 0.0 {
        return 0;
    }
    let threshold = tol * scale;
    let mut rank = 0;
    let mut pivot_row = 0;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Find the largest entry in this column at or below pivot_row.
        let mut best = pivot_row;
        let mut best_val = m[(pivot_row, col)].abs();
        for i in (pivot_row + 1)..rows {
            let v = m[(i, col)].abs();
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        if best_val <= threshold {
            continue;
        }
        m.swap_rows(pivot_row, best);
        let pivot = m[(pivot_row, col)];
        for i in (pivot_row + 1)..rows {
            let factor = m[(i, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..cols {
                let delta = factor * m[(pivot_row, j)];
                m[(i, j)] -= delta;
            }
        }
        rank += 1;
        pivot_row += 1;
    }
    rank
}

/// Incremental selector of linearly-independent rows.
///
/// Rows are offered one at a time (in priority order); a row is accepted if
/// it is not (numerically) in the span of the rows accepted so far. The
/// selector keeps an orthonormal basis of the accepted rows, so each offer
/// costs `O(k·n)` where `k` is the number of rows accepted so far.
#[derive(Debug, Clone)]
pub struct IndependentRowSelector {
    dim: usize,
    tol: f64,
    basis: Vec<Vec<f64>>,
}

impl IndependentRowSelector {
    /// Creates a selector for rows of length `dim` with relative tolerance
    /// `tol` (a row is rejected if, after orthogonalisation against the
    /// accepted rows, its norm falls below `tol` times its original norm).
    pub fn new(dim: usize, tol: f64) -> Self {
        IndependentRowSelector {
            dim,
            tol,
            basis: Vec::new(),
        }
    }

    /// Number of rows accepted so far.
    pub fn accepted(&self) -> usize {
        self.basis.len()
    }

    /// Returns `true` when the accepted rows already span the full space.
    pub fn is_complete(&self) -> bool {
        self.basis.len() >= self.dim
    }

    /// Offers a row; returns `true` if it was accepted (linearly
    /// independent from the rows accepted so far).
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong length.
    pub fn offer(&mut self, row: &[f64]) -> bool {
        assert_eq!(row.len(), self.dim, "row has wrong length");
        if self.is_complete() {
            return false;
        }
        let original_norm = l2_norm(row);
        if original_norm == 0.0 {
            return false;
        }
        let mut v = row.to_vec();
        // Two passes of modified Gram–Schmidt for numerical robustness.
        for _ in 0..2 {
            for b in &self.basis {
                let proj = dot(&v, b);
                for (vi, bi) in v.iter_mut().zip(b.iter()) {
                    *vi -= proj * bi;
                }
            }
        }
        let remaining = l2_norm(&v);
        if remaining <= self.tol * original_norm {
            return false;
        }
        for vi in &mut v {
            *vi /= remaining;
        }
        self.basis.push(v);
        true
    }
}

/// Selects a maximal linearly-independent subset of the rows of `a`,
/// considering rows in the order given by `priority` (indices into the rows
/// of `a`). Returns the indices of the accepted rows, in acceptance order.
///
/// # Panics
///
/// Panics if any priority index is out of bounds.
pub fn select_independent_rows(a: &Matrix, priority: &[usize], tol: f64) -> Vec<usize> {
    let mut selector = IndependentRowSelector::new(a.cols(), tol);
    let mut accepted = Vec::new();
    for &i in priority {
        if selector.is_complete() {
            break;
        }
        if selector.offer(a.row_slice(i)) {
            accepted.push(i);
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_simple_matrices() {
        assert_eq!(numerical_rank(&Matrix::identity(3), 1e-10), 3);
        assert_eq!(numerical_rank(&Matrix::zeros(3, 3), 1e-10), 0);

        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(numerical_rank(&a, 1e-10), 1);

        let b = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 2.0],
        ])
        .unwrap();
        // Third row is the sum of the first two.
        assert_eq!(numerical_rank(&b, 1e-10), 2);
    }

    #[test]
    fn rank_of_wide_and_tall_matrices() {
        let wide = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(numerical_rank(&wide, 1e-10), 2);
        let tall = wide.transpose();
        assert_eq!(numerical_rank(&tall, 1e-10), 2);
    }

    #[test]
    fn selector_accepts_only_independent_rows() {
        let mut sel = IndependentRowSelector::new(3, 1e-9);
        assert!(sel.offer(&[1.0, 0.0, 0.0]));
        assert!(sel.offer(&[1.0, 1.0, 0.0]));
        // In the span of the first two.
        assert!(!sel.offer(&[3.0, 5.0, 0.0]));
        assert!(!sel.offer(&[0.0, 0.0, 0.0]));
        assert!(sel.offer(&[0.0, 0.0, 7.0]));
        assert!(sel.is_complete());
        // Once complete, everything is rejected.
        assert!(!sel.offer(&[1.0, 2.0, 3.0]));
        assert_eq!(sel.accepted(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn selector_panics_on_wrong_length() {
        let mut sel = IndependentRowSelector::new(3, 1e-9);
        sel.offer(&[1.0, 2.0]);
    }

    #[test]
    fn select_independent_rows_respects_priority() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0], // 0
            vec![2.0, 0.0], // 1 (dependent on 0)
            vec![0.0, 1.0], // 2
            vec![1.0, 1.0], // 3 (dependent on 0, 2)
        ])
        .unwrap();
        // Priority order prefers row 1 over row 0.
        let chosen = select_independent_rows(&a, &[1, 0, 3, 2], 1e-9);
        assert_eq!(chosen, vec![1, 3]);
        let chosen2 = select_independent_rows(&a, &[0, 1, 2, 3], 1e-9);
        assert_eq!(chosen2, vec![0, 2]);
    }

    #[test]
    fn selection_count_matches_rank() {
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![1.0, 2.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0, 1.0],
        ])
        .unwrap();
        let order: Vec<usize> = (0..a.rows()).collect();
        let chosen = select_independent_rows(&a, &order, 1e-9);
        assert_eq!(chosen.len(), numerical_rank(&a, 1e-10));
    }
}
