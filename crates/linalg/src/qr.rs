//! Householder QR factorisation and least-squares solves.
//!
//! The measurement systems built by the tomography algorithms are usually
//! over-determined (more path / path-pair equations than links) and noisy
//! (the right-hand sides are empirical log-probabilities), so the workhorse
//! solver is a QR-based least-squares solve.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::DEFAULT_TOLERANCE;

/// Householder QR factorisation `A = Q·R` of an `m × n` matrix with
/// `m >= n`.
///
/// The factorisation is stored compactly: the Householder vectors live in
/// the lower trapezoid of `qr` and the upper triangle holds `R`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    qr: Matrix,
    /// The scalar `beta` of each Householder reflector `H = I - beta v vᵀ`.
    betas: Vec<f64>,
    /// Diagonal entries of `R`, kept separately for rank checks.
    r_diag: Vec<f64>,
}

impl QrDecomposition {
    /// Factorises `a`. Requires `a.rows() >= a.cols()` and a non-empty,
    /// finite matrix.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if a.rows() < a.cols() {
            return Err(LinalgError::DimensionMismatch {
                operation: "QrDecomposition::new (requires rows >= cols)",
                expected: a.cols(),
                actual: a.rows(),
            });
        }
        if !a.all_finite() {
            return Err(LinalgError::NotFinite);
        }
        let m = a.rows();
        let n = a.cols();
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        let mut r_diag = vec![0.0; n];

        for k in 0..n {
            // Compute the norm of the k-th column below the diagonal.
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm <= DEFAULT_TOLERANCE {
                // Zero column below the diagonal: no reflector.
                betas[k] = 0.0;
                r_diag[k] = 0.0;
                continue;
            }
            // Choose the sign that avoids cancellation.
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            r_diag[k] = alpha;
            // v = x - alpha * e1 (stored in place); normalise so v[k] = 1.
            let vkk = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / vkk;
                qr[(i, k)] = scaled;
            }
            qr[(k, k)] = 1.0;
            betas[k] = -vkk / alpha;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= betas[k];
                for i in k..m {
                    let delta = s * qr[(i, k)];
                    qr[(i, j)] -= delta;
                }
            }
        }
        Ok(QrDecomposition { qr, betas, r_diag })
    }

    /// Numerical rank of `A`, i.e. the number of diagonal entries of `R`
    /// whose magnitude exceeds `tol * max |R_ii|`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.r_diag.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
        if max == 0.0 {
            return 0;
        }
        self.r_diag.iter().filter(|v| v.abs() > tol * max).count()
    }

    /// Returns `true` if `R` has a numerically-zero diagonal entry, i.e.
    /// the columns of `A` are (numerically) linearly dependent.
    pub fn is_rank_deficient(&self) -> bool {
        self.rank(1e-12) < self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector of length `m`, in place.
    fn apply_q_transpose(&self, b: &mut [f64]) {
        let m = self.qr.rows();
        let n = self.qr.cols();
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.betas[k];
            for i in k..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ‖A x - b‖₂`.
    ///
    /// Returns an error if `b` has the wrong length or `A` is rank
    /// deficient (use [`crate::l1::min_l1_norm_solution`] or ridge-style
    /// regularisation for that case).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "QrDecomposition::solve_least_squares",
                expected: m,
                actual: b.len(),
            });
        }
        if self.is_rank_deficient() {
            return Err(LinalgError::Singular);
        }
        let mut qtb = b.to_vec();
        self.apply_q_transpose(&mut qtb);
        // Back substitution with R (diagonal in r_diag, strict upper in qr).
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = qtb[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.r_diag[i];
        }
        Ok(x)
    }

    /// Solves `min_x ‖A x - bᵢ‖₂` for a batch of right-hand sides,
    /// re-using the factorisation for every solve.
    ///
    /// This is the batched-inference workhorse: the measurement matrix of
    /// a topology is observation-independent, so trials that differ only
    /// in their right-hand side share one factorisation and each solve is
    /// an `O(mn)` reflector sweep plus an `O(n²)` back-substitution —
    /// the `O(mn²)` factorisation cost is paid once. The reflectors are
    /// applied column-blocked (each Householder vector is swept across
    /// every right-hand side before moving to the next) so the hot
    /// reflector column stays in cache.
    ///
    /// Each returned solution is bit-identical to
    /// [`QrDecomposition::solve_least_squares`] on the same right-hand
    /// side.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        for b in rhs {
            if b.len() != m {
                return Err(LinalgError::DimensionMismatch {
                    operation: "QrDecomposition::solve_many",
                    expected: m,
                    actual: b.len(),
                });
            }
        }
        if self.is_rank_deficient() {
            return Err(LinalgError::Singular);
        }
        let mut qtb: Vec<Vec<f64>> = rhs.to_vec();
        // Reflector-outer, RHS-inner: one pass over the k-th Householder
        // column updates every right-hand side while the column is hot.
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            for b in qtb.iter_mut() {
                let mut s = 0.0;
                for i in k..m {
                    s += self.qr[(i, k)] * b[i];
                }
                s *= self.betas[k];
                for i in k..m {
                    b[i] -= s * self.qr[(i, k)];
                }
            }
        }
        // Back substitution per right-hand side.
        let mut solutions = Vec::with_capacity(rhs.len());
        for b in &qtb {
            let mut x = vec![0.0; n];
            for i in (0..n).rev() {
                let mut acc = b[i];
                for j in (i + 1)..n {
                    acc -= self.qr[(i, j)] * x[j];
                }
                x[i] = acc / self.r_diag[i];
            }
            solutions.push(x);
        }
        Ok(solutions)
    }

    /// Reconstructs the thin `m × n` orthonormal factor `Q`, so that
    /// `A = Q · R` and `Qᵀ Q = I` (useful in tests).
    ///
    /// Column `j` is `Q e_j = H_0 · H_1 ⋯ H_{n-1} e_j`: the Householder
    /// reflectors applied in reverse order (each `H_k` is symmetric, and
    /// `Qᵀ = H_{n-1} ⋯ H_0`).
    pub fn q(&self) -> Matrix {
        let m = self.qr.rows();
        let n = self.qr.cols();
        let mut q = Matrix::zeros(m, n);
        let mut col = vec![0.0; m];
        for j in 0..n {
            col.iter_mut().for_each(|v| *v = 0.0);
            col[j] = 1.0;
            for k in (0..n).rev() {
                if self.betas[k] == 0.0 {
                    continue;
                }
                let mut s = 0.0;
                for i in k..m {
                    s += self.qr[(i, k)] * col[i];
                }
                s *= self.betas[k];
                for i in k..m {
                    col[i] -= s * self.qr[(i, k)];
                }
            }
            for i in 0..m {
                q[(i, j)] = col[i];
            }
        }
        q
    }

    /// Reconstructs the `n × n` upper-triangular factor `R` (useful in
    /// tests).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            r[(i, i)] = self.r_diag[i];
            for j in (i + 1)..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{approx_eq, l2_norm, sub};

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_row_slice(2, 2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&[5.0, 10.0]).unwrap();
        assert!(approx_eq(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn least_squares_on_overdetermined_system() {
        // Fit y = a + b t to points (0,1), (1,3), (2,5): exact line a=1, b=2.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&[1.0, 3.0, 5.0]).unwrap();
        assert!(approx_eq(&x, &[1.0, 2.0], 1e-10));
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Inconsistent system: the LS solution has a smaller residual than
        // nearby perturbations.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        let b = [0.9, 3.2, 4.9, 7.3];
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let res = |x: &[f64]| l2_norm(&sub(&a.matvec(x).unwrap(), &b));
        let base = res(&x);
        for delta in [[0.01, 0.0], [-0.01, 0.0], [0.0, 0.01], [0.0, -0.01]] {
            let perturbed = [x[0] + delta[0], x[1] + delta[1]];
            assert!(res(&perturbed) >= base - 1e-12);
        }
    }

    #[test]
    fn rank_detection() {
        let full = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(QrDecomposition::new(&full).unwrap().rank(1e-12), 2);

        // Second column is twice the first: rank 1.
        let deficient =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = QrDecomposition::new(&deficient).unwrap();
        assert_eq!(qr.rank(1e-9), 1);
        assert!(qr.is_rank_deficient());
        assert_eq!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn r_factor_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.rows(), 2);
        assert_eq!(r.cols(), 2);
        // |det R| = sqrt(det (AᵀA))
        let ata = a.transpose().matmul(&a).unwrap();
        let det_ata = crate::lu::LuDecomposition::new(&ata).unwrap().determinant();
        let det_r = r[(0, 0)] * r[(1, 1)];
        assert!((det_r.abs() - det_ata.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            QrDecomposition::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            QrDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let mut bad = Matrix::identity(2);
        bad[(1, 1)] = f64::INFINITY;
        assert!(matches!(
            QrDecomposition::new(&bad),
            Err(LinalgError::NotFinite)
        ));
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_many_is_bit_identical_to_individual_solves() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![1.0, 1.0, 0.5],
            vec![1.0, 2.0, -1.0],
            vec![0.0, 3.0, 1.0],
            vec![2.0, -1.0, 0.0],
        ])
        .unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let rhs: Vec<Vec<f64>> = vec![
            vec![0.9, 3.2, 4.9, 7.3, -1.1],
            vec![1.0, 0.0, 0.0, 0.0, 1.0],
            vec![-2.5, 0.25, 3.5, 0.125, 4.0],
        ];
        let batched = qr.solve_many(&rhs).unwrap();
        for (b, x) in rhs.iter().zip(&batched) {
            let single = qr.solve_least_squares(b).unwrap();
            assert_eq!(x, &single, "batched solve must be bit-identical");
        }
    }

    #[test]
    fn solve_many_rejects_bad_inputs() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve_many(&[vec![1.0, 2.0]]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert_eq!(qr.solve_many(&[]).unwrap(), Vec::<Vec<f64>>::new());
        let deficient =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = QrDecomposition::new(&deficient).unwrap();
        assert!(matches!(
            qr.solve_many(&[vec![1.0, 2.0, 3.0]]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn all_zero_matrix_has_rank_zero() {
        let z = Matrix::zeros(4, 3);
        let qr = QrDecomposition::new(&z).unwrap();
        assert_eq!(qr.rank(1e-12), 0);
    }
}
