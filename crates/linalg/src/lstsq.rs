//! Least-squares driver.
//!
//! [`solve_least_squares`] accepts a system of any shape and picks an
//! appropriate method:
//!
//! * over-determined (or square), full column rank → Householder QR;
//! * over-determined but rank-deficient → ridge-regularised normal
//!   equations (a tiny Tikhonov term keeps the solve well-posed);
//! * under-determined → minimum-L2-norm solution through the normal
//!   equations of the adjoint system (`A Aᵀ w = b`, `x = Aᵀ w`), again with
//!   a ridge fallback when the rows are dependent.
//!
//! The tomography algorithms use this driver for the determined /
//! over-determined case and switch to [`crate::l1`] when the system is
//! under-determined, matching the paper.

use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::matrix::Matrix;
use crate::norms::{l2_norm, sub};
use crate::qr::QrDecomposition;

/// Which numerical path produced a [`LeastSquaresSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeastSquaresMethod {
    /// Householder QR on a full-column-rank system.
    Qr,
    /// Ridge-regularised normal equations (rank-deficient, rows ≥ cols).
    RidgeNormalEquations,
    /// Minimum-L2-norm solution of an under-determined system.
    MinimumNorm,
}

/// The result of a least-squares solve.
#[derive(Debug, Clone)]
pub struct LeastSquaresSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Euclidean norm of the residual `‖Ax − b‖₂`.
    pub residual: f64,
    /// The method that was used.
    pub method: LeastSquaresMethod,
}

/// Ridge parameter used when a system is numerically rank-deficient.
const RIDGE: f64 = 1e-8;

/// Solves `min_x ‖A x − b‖₂`, choosing the method according to the shape
/// and rank of `A`. See the module documentation for details.
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<LeastSquaresSolution, LinalgError> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "solve_least_squares",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    if !a.all_finite() || !crate::norms::all_finite(b) {
        return Err(LinalgError::NotFinite);
    }

    let (x, method) = if a.rows() >= a.cols() {
        let qr = QrDecomposition::new(a)?;
        if qr.is_rank_deficient() {
            (
                ridge_normal_equations(a, b)?,
                LeastSquaresMethod::RidgeNormalEquations,
            )
        } else {
            (qr.solve_least_squares(b)?, LeastSquaresMethod::Qr)
        }
    } else {
        (
            minimum_norm_solution(a, b)?,
            LeastSquaresMethod::MinimumNorm,
        )
    };

    let residual = l2_norm(&sub(&a.matvec(&x)?, b));
    Ok(LeastSquaresSolution {
        x,
        residual,
        method,
    })
}

/// Solves `(AᵀA + λI) x = Aᵀ b` with a small ridge term `λ`.
fn ridge_normal_equations(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    let scale = ata.max_abs().max(1.0);
    for i in 0..ata.rows() {
        ata[(i, i)] += RIDGE * scale;
    }
    let atb = at.matvec(b)?;
    LuDecomposition::new(&ata)?.solve(&atb)
}

/// Minimum-L2-norm solution of an under-determined system: `x = Aᵀ w`
/// where `A Aᵀ w = b` (ridge-regularised if the rows are dependent).
fn minimum_norm_solution(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let at = a.transpose();
    let mut aat = a.matmul(&at)?;
    let lu = LuDecomposition::new(&aat)?;
    let w = if lu.is_singular() {
        let scale = aat.max_abs().max(1.0);
        for i in 0..aat.rows() {
            aat[(i, i)] += RIDGE * scale;
        }
        LuDecomposition::new(&aat)?.solve(b)?
    } else {
        lu.solve(b)?
    };
    at.matvec(&w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::approx_eq;

    #[test]
    fn square_full_rank_uses_qr() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let sol = solve_least_squares(&a, &[5.0, 10.0]).unwrap();
        assert_eq!(sol.method, LeastSquaresMethod::Qr);
        assert!(approx_eq(&sol.x, &[1.0, 3.0], 1e-9));
        assert!(sol.residual < 1e-9);
    }

    #[test]
    fn overdetermined_consistent_system() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let b = [2.0, 3.0, 5.0];
        let sol = solve_least_squares(&a, &b).unwrap();
        assert!(approx_eq(&sol.x, &[2.0, 3.0], 1e-9));
        assert!(sol.residual < 1e-9);
    }

    #[test]
    fn rank_deficient_overdetermined_falls_back_to_ridge() {
        // Columns are identical: infinitely many LS solutions; ridge picks
        // a finite one that still fits.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let b = [2.0, 4.0, 6.0];
        let sol = solve_least_squares(&a, &b).unwrap();
        assert_eq!(sol.method, LeastSquaresMethod::RidgeNormalEquations);
        assert!(sol.residual < 1e-3);
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn underdetermined_returns_minimum_norm_solution() {
        // x1 + x2 = 2: minimum-L2-norm solution is (1, 1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let sol = solve_least_squares(&a, &[2.0]).unwrap();
        assert_eq!(sol.method, LeastSquaresMethod::MinimumNorm);
        assert!(approx_eq(&sol.x, &[1.0, 1.0], 1e-9));
    }

    #[test]
    fn underdetermined_with_dependent_rows_still_solves() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![2.0, 2.0, 0.0]]).unwrap();
        let sol = solve_least_squares(&a, &[2.0, 4.0]).unwrap();
        assert!(sol.residual < 1e-3);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            solve_least_squares(&Matrix::zeros(0, 0), &[]),
            Err(LinalgError::Empty)
        ));
        let a = Matrix::identity(2);
        assert!(matches!(
            solve_least_squares(&a, &[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            solve_least_squares(&a, &[f64::NAN, 1.0]),
            Err(LinalgError::NotFinite)
        ));
    }

    #[test]
    fn residual_is_reported_for_inconsistent_system() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let sol = solve_least_squares(&a, &[0.0, 2.0]).unwrap();
        // LS solution is x = 1, residual = sqrt(2).
        assert!(approx_eq(&sol.x, &[1.0], 1e-9));
        assert!((sol.residual - std::f64::consts::SQRT_2).abs() < 1e-9);
    }
}
