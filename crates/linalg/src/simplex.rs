//! Two-phase primal simplex solver for linear programs in standard form.
//!
//! The solver handles programs of the form
//!
//! ```text
//! minimise    cᵀ x
//! subject to  A x = b
//!             x ≥ 0
//! ```
//!
//! which is exactly what the minimum-L1-norm reformulation in [`crate::l1`]
//! produces. The implementation uses a dense tableau and Bland's rule to
//! guarantee termination, which is more than fast enough for the problem
//! sizes that arise in the tomography equations (a few thousand variables).

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A linear program in standard form: minimise `cᵀx` subject to `Ax = b`,
/// `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Objective coefficients `c` (length = number of variables).
    pub objective: Vec<f64>,
    /// Constraint matrix `A` (`m × n`).
    pub constraints: Matrix,
    /// Right-hand side `b` (length `m`).
    pub rhs: Vec<f64>,
}

/// Status of a solved linear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

/// The result of solving a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Optimal primal solution (meaningful only when `status == Optimal`;
    /// empty otherwise).
    pub x: Vec<f64>,
    /// Optimal objective value (meaningful only when `status == Optimal`).
    pub objective_value: f64,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Numerical tolerance used for feasibility / optimality tests inside the
/// simplex iterations.
const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates a new standard-form linear program.
    ///
    /// Returns an error if the dimensions are inconsistent or any input is
    /// non-finite.
    pub fn new(
        objective: Vec<f64>,
        constraints: Matrix,
        rhs: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if constraints.cols() != objective.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LinearProgram::new (objective length)",
                expected: constraints.cols(),
                actual: objective.len(),
            });
        }
        if constraints.rows() != rhs.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LinearProgram::new (rhs length)",
                expected: constraints.rows(),
                actual: rhs.len(),
            });
        }
        if !constraints.all_finite()
            || !crate::norms::all_finite(&objective)
            || !crate::norms::all_finite(&rhs)
        {
            return Err(LinalgError::NotFinite);
        }
        Ok(LinearProgram {
            objective,
            constraints,
            rhs,
        })
    }

    /// Number of decision variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of equality constraints.
    pub fn num_constraints(&self) -> usize {
        self.rhs.len()
    }

    /// Solves the program with the two-phase primal simplex method.
    pub fn solve(&self) -> Result<LpSolution, LinalgError> {
        let m = self.num_constraints();
        let n = self.num_variables();
        if n == 0 {
            // Degenerate: no variables. Feasible iff b = 0.
            let feasible = self.rhs.iter().all(|v| v.abs() <= EPS);
            return Ok(LpSolution {
                status: if feasible {
                    LpStatus::Optimal
                } else {
                    LpStatus::Infeasible
                },
                x: Vec::new(),
                objective_value: 0.0,
                iterations: 0,
            });
        }

        // Build the phase-1 tableau with artificial variables. Columns:
        // [x_0..x_{n-1}, a_0..a_{m-1} | rhs]. Rows are the constraints with
        // the sign flipped where needed so that rhs >= 0.
        let total = n + m;
        let mut tableau = Matrix::zeros(m, total + 1);
        for i in 0..m {
            let flip = if self.rhs[i] < 0.0 { -1.0 } else { 1.0 };
            for j in 0..n {
                tableau[(i, j)] = flip * self.constraints[(i, j)];
            }
            tableau[(i, n + i)] = 1.0;
            tableau[(i, total)] = flip * self.rhs[i];
        }
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut iterations = 0;

        // ---- Phase 1: minimise the sum of artificial variables. ----
        let phase1_cost: Vec<f64> = (0..total).map(|j| if j >= n { 1.0 } else { 0.0 }).collect();
        let phase1_value =
            simplex_iterate(&mut tableau, &mut basis, &phase1_cost, &mut iterations)?;
        if phase1_value > 1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: Vec::new(),
                objective_value: f64::NAN,
                iterations,
            });
        }

        // Drive any artificial variables that remain in the basis out of it
        // (they must be at zero level).
        for row in 0..m {
            if basis[row] >= n {
                // Find a non-artificial column with a non-zero entry in this
                // row to pivot on.
                let mut pivot_col = None;
                for j in 0..n {
                    if tableau[(row, j)].abs() > EPS {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(col) = pivot_col {
                    pivot(&mut tableau, &mut basis, row, col);
                    iterations += 1;
                }
                // If no pivot column exists the row is redundant (all-zero
                // over the original variables); leave the artificial basic
                // variable at zero.
            }
        }

        // Remove redundant rows (artificial variables stuck in the basis at
        // zero level on all-zero rows) and drop the artificial columns
        // entirely, so phase 2 works on the original variables only.
        let keep: Vec<usize> = (0..m).filter(|&i| basis[i] < n).collect();
        let mut reduced = Matrix::zeros(keep.len(), n + 1);
        let mut reduced_basis = Vec::with_capacity(keep.len());
        for (new_i, &i) in keep.iter().enumerate() {
            for j in 0..n {
                reduced[(new_i, j)] = tableau[(i, j)];
            }
            reduced[(new_i, n)] = tableau[(i, total)];
            reduced_basis.push(basis[i]);
        }
        let mut tableau = reduced;
        let mut basis = reduced_basis;

        // ---- Phase 2: minimise the true objective over x. ----
        let objective_value =
            match simplex_iterate(&mut tableau, &mut basis, &self.objective, &mut iterations) {
                Ok(v) => v,
                Err(LinalgError::Unbounded) => {
                    return Ok(LpSolution {
                        status: LpStatus::Unbounded,
                        x: Vec::new(),
                        objective_value: f64::NEG_INFINITY,
                        iterations,
                    })
                }
                Err(e) => return Err(e),
            };

        // Extract the solution.
        let mut x = vec![0.0; n];
        let rhs_col = tableau.cols() - 1;
        for (row, &b) in basis.iter().enumerate() {
            if b < n {
                x[b] = tableau[(row, rhs_col)];
            }
        }
        Ok(LpSolution {
            status: LpStatus::Optimal,
            x,
            objective_value,
            iterations,
        })
    }
}

/// Performs simplex pivoting on `tableau` (rows = constraints, last column =
/// rhs) with the reduced costs computed from `cost`, until optimality or
/// unboundedness. Returns the objective value of the basic solution at
/// termination.
fn simplex_iterate(
    tableau: &mut Matrix,
    basis: &mut [usize],
    cost: &[f64],
    iterations: &mut usize,
) -> Result<f64, LinalgError> {
    let m = tableau.rows();
    let total = tableau.cols() - 1;
    // A very generous iteration budget; Bland's rule guarantees finiteness
    // but we guard against pathological numerical behaviour anyway.
    let max_iterations = 50 * (total + m) * (total + m).max(64);

    loop {
        // Compute the simplex multipliers implicitly: reduced cost of
        // column j is c_j - c_B · B^{-1} A_j; since the tableau is kept in
        // canonical form (basic columns are unit vectors), the reduced cost
        // is c_j - Σ_i c_{basis[i]} * tableau[i][j].
        let mut entering = None;
        for j in 0..total {
            if basis.contains(&j) {
                continue;
            }
            let mut reduced = cost[j];
            for i in 0..m {
                reduced -= cost[basis[i]] * tableau[(i, j)];
            }
            if reduced < -EPS {
                // Bland's rule: pick the lowest-index improving column.
                entering = Some(j);
                break;
            }
        }
        let Some(col) = entering else {
            // Optimal: compute the objective value.
            let mut value = 0.0;
            for i in 0..m {
                value += cost[basis[i]] * tableau[(i, total)];
            }
            return Ok(value);
        };

        // Ratio test: choose the leaving row (Bland's rule on ties).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tableau[(i, col)];
            if a > EPS {
                let ratio = tableau[(i, total)] / a;
                if ratio < best_ratio - EPS
                    || ((ratio - best_ratio).abs() <= EPS
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return Err(LinalgError::Unbounded);
        };

        pivot(tableau, basis, row, col);
        *iterations += 1;
        if *iterations > max_iterations {
            return Err(LinalgError::DidNotConverge {
                iterations: *iterations,
            });
        }
    }
}

/// Pivots the tableau on `(row, col)`: scales the pivot row so the pivot
/// entry becomes 1 and eliminates the column from every other row.
fn pivot(tableau: &mut Matrix, basis: &mut [usize], row: usize, col: usize) {
    let cols = tableau.cols();
    let pivot_val = tableau[(row, col)];
    debug_assert!(pivot_val.abs() > 0.0, "pivot on a zero entry");
    for j in 0..cols {
        tableau[(row, j)] /= pivot_val;
    }
    for i in 0..tableau.rows() {
        if i == row {
            continue;
        }
        let factor = tableau[(i, col)];
        if factor == 0.0 {
            continue;
        }
        for j in 0..cols {
            let delta = factor * tableau[(row, j)];
            tableau[(i, j)] -= delta;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::approx_eq;

    fn lp(c: &[f64], a_rows: &[Vec<f64>], b: &[f64]) -> LinearProgram {
        LinearProgram::new(c.to_vec(), Matrix::from_rows(a_rows).unwrap(), b.to_vec()).unwrap()
    }

    #[test]
    fn solves_trivial_feasibility_problem() {
        // min x1 + x2 s.t. x1 + x2 = 1, x >= 0 -> optimum 1.
        let p = lp(&[1.0, 1.0], &[vec![1.0, 1.0]], &[1.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective_value - 1.0).abs() < 1e-8);
        assert!((sol.x[0] + sol.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn solves_textbook_lp() {
        // min -3x - 5y s.t. x + s1 = 4, 2y + s2 = 12, 3x + 2y + s3 = 18,
        // all vars >= 0. Classic problem: optimum at x=2, y=6, objective -36.
        let p = lp(
            &[-3.0, -5.0, 0.0, 0.0, 0.0],
            &[
                vec![1.0, 0.0, 1.0, 0.0, 0.0],
                vec![0.0, 2.0, 0.0, 1.0, 0.0],
                vec![3.0, 2.0, 0.0, 0.0, 1.0],
            ],
            &[4.0, 12.0, 18.0],
        );
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective_value + 36.0).abs() < 1e-7);
        assert!((sol.x[0] - 2.0).abs() < 1e-7);
        assert!((sol.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasibility() {
        // x1 + x2 = 1 and x1 + x2 = 3 cannot both hold.
        let p = lp(&[1.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 1.0]], &[1.0, 3.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x1 s.t. x1 - x2 = 0: x1 = x2 can grow without bound.
        let p = lp(&[-1.0, 0.0], &[vec![1.0, -1.0]], &[0.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn handles_negative_rhs_by_row_flip() {
        // -x1 = -2 means x1 = 2.
        let p = lp(&[1.0], &[vec![-1.0]], &[-2.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(approx_eq(&sol.x, &[2.0], 1e-8));
    }

    #[test]
    fn handles_redundant_constraints() {
        // Duplicate constraint rows; still optimal.
        let p = lp(&[1.0, 2.0], &[vec![1.0, 1.0], vec![1.0, 1.0]], &[1.0, 1.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective_value - 1.0).abs() < 1e-8);
        assert!(
            (sol.x[0] - 1.0).abs() < 1e-8,
            "should prefer the cheap variable"
        );
    }

    #[test]
    fn zero_variable_program() {
        let p = LinearProgram::new(vec![], Matrix::zeros(1, 0), vec![0.0]).unwrap();
        assert_eq!(p.solve().unwrap().status, LpStatus::Optimal);
        let q = LinearProgram::new(vec![], Matrix::zeros(1, 0), vec![1.0]).unwrap();
        assert_eq!(q.solve().unwrap().status, LpStatus::Infeasible);
    }

    #[test]
    fn rejects_dimension_mismatches() {
        assert!(LinearProgram::new(vec![1.0], Matrix::zeros(1, 2), vec![1.0]).is_err());
        assert!(LinearProgram::new(vec![1.0, 2.0], Matrix::zeros(1, 2), vec![1.0, 2.0]).is_err());
        assert!(LinearProgram::new(vec![f64::NAN, 2.0], Matrix::zeros(1, 2), vec![1.0]).is_err());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A problem with degenerate vertices; Bland's rule must terminate.
        let p = lp(
            &[1.0, 1.0, 1.0],
            &[
                vec![1.0, 1.0, 0.0],
                vec![1.0, 0.0, 1.0],
                vec![1.0, 0.0, 0.0],
            ],
            &[1.0, 1.0, 1.0],
        );
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective_value - 1.0).abs() < 1e-8);
        assert!(approx_eq(&sol.x, &[1.0, 0.0, 0.0], 1e-8));
    }
}
