//! Integration test: the full pipeline on a PlanetLab-style topology — the
//! smoke-scale versions of the paper's Figure 4(c)/(d) and 5(c)/(d)
//! experiments.

use netcorr::eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr::eval::runner::{run_experiment, ExperimentConfig};
use netcorr::eval::scenario::{CorrelationLevel, ScenarioBuilder, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        trials: 2,
        snapshots: 500,
        base_seed: 77,
        parallel: true,
        ..ExperimentConfig::smoke()
    }
}

#[test]
fn unidentifiable_scenario_on_planetlab() {
    let base = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 77).unwrap();
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        unidentifiable_fraction: 0.5,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, &experiment_config()).unwrap();
    let corr = result.correlation_summary();
    let indep = result.independence_summary();
    assert!(corr.count > 10);
    assert!(
        corr.mean <= indep.mean + 0.02,
        "correlation {} vs independence {}",
        corr.mean,
        indep.mean
    );
    // Even with half the congested links unidentifiable, most links are
    // still characterised with a small error.
    assert!(
        corr.median < 0.15,
        "correlation median error {}",
        corr.median
    );
}

#[test]
fn mislabeled_scenario_on_planetlab() {
    let base = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 78).unwrap();
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        mislabeled_fraction: 0.5,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, &experiment_config()).unwrap();
    let corr = result.correlation_summary();
    let indep = result.independence_summary();
    assert!(
        corr.mean <= indep.mean + 0.02,
        "correlation {} vs independence {}",
        corr.mean,
        indep.mean
    );
}

#[test]
fn scenario_bookkeeping_matches_the_instance_handed_to_the_algorithms() {
    // The scenario's instance must stay consistent with the base topology
    // (same links and paths), only the correlation partition may differ.
    let base = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 79).unwrap();
    let config = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        unidentifiable_fraction: 0.25,
        mislabeled_fraction: 0.25,
        ..ScenarioConfig::default()
    };
    let scenario = ScenarioBuilder::new(config)
        .unwrap()
        .build(&base, &mut StdRng::seed_from_u64(80))
        .unwrap();
    assert_eq!(scenario.instance.num_links(), base.num_links());
    assert_eq!(scenario.instance.num_paths(), base.num_paths());
    scenario.instance.validate().unwrap();
    // Ground truth and model agree on the marginals.
    for link in base.topology.link_ids() {
        assert!(
            (scenario.model.marginal(link) - scenario.true_marginals[link.index()]).abs() < 1e-12
        );
    }
    // Unidentifiable and mislabeled links are congested links, and the two
    // mechanisms target different links.
    for l in &scenario.unidentifiable_links {
        assert!(scenario.congested_links.contains(l));
    }
    for l in &scenario.mislabeled_links {
        assert!(scenario.congested_links.contains(l));
    }
}
