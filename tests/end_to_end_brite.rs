//! Integration test: the full pipeline on a BRITE-style topology — the
//! smoke-scale version of the paper's Figure 3 experiment.

use netcorr::eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr::eval::runner::{run_experiment, ExperimentConfig};
use netcorr::eval::scenario::{CorrelationLevel, ScenarioConfig};

fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        trials: 2,
        snapshots: 500,
        base_seed: 2010,
        parallel: true,
        ..ExperimentConfig::smoke()
    }
}

#[test]
fn correlation_algorithm_outperforms_the_baseline_under_ideal_conditions() {
    // Figure 3(c) at smoke scale: 10% congested links, highly correlated.
    let base = base_instance(TopologyFamily::Brite, Scale::Smoke, 2010).unwrap();
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, &experiment_config()).unwrap();
    let corr = result.correlation_summary();
    let indep = result.independence_summary();

    assert!(
        corr.count > 10,
        "expected a meaningful number of scored links"
    );
    // The correlation algorithm is accurate in absolute terms...
    assert!(corr.mean < 0.10, "correlation mean error {}", corr.mean);
    // ...and at least as good as the independence baseline (up to a small
    // noise margin; the paper-scale runs in EXPERIMENTS.md show the gap).
    assert!(
        corr.mean <= indep.mean + 0.01,
        "correlation {} vs independence {}",
        corr.mean,
        indep.mean
    );
}

#[test]
fn baseline_error_grows_with_congestion_but_correlation_stays_flat() {
    // Figure 3(a) at smoke scale, comparing the 5% and 25% points.
    let base = base_instance(TopologyFamily::Brite, Scale::Smoke, 7).unwrap();
    let config = experiment_config();
    let run = |fraction: f64| {
        let scenario = ScenarioConfig {
            congested_fraction: fraction,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            ..ScenarioConfig::default()
        };
        run_experiment(&base, &scenario, &config).unwrap()
    };
    let light = run(0.05);
    let heavy = run(0.25);
    // The correlation algorithm's error stays small even with heavy,
    // highly-correlated congestion.
    assert!(
        heavy.correlation_summary().mean < 0.12,
        "correlation mean at 25% congestion: {}",
        heavy.correlation_summary().mean
    );
    // The baseline degrades (or at best stays the same) as congestion grows.
    assert!(
        heavy.independence_summary().mean + 0.02 >= light.independence_summary().mean,
        "independence mean went from {} (5%) to {} (25%)",
        light.independence_summary().mean,
        heavy.independence_summary().mean
    );
    // And at 25% congestion the correlation algorithm is no worse than the
    // baseline.
    assert!(
        heavy.correlation_summary().mean <= heavy.independence_summary().mean + 0.01,
        "correlation {} vs independence {} at 25% congestion",
        heavy.correlation_summary().mean,
        heavy.independence_summary().mean
    );
}

#[test]
fn unidentifiable_links_degrade_gracefully() {
    // Figure 4(a)/(b) at smoke scale: the correlation algorithm still beats
    // the baseline when a quarter / half of the congested links are
    // unidentifiable.
    let base = base_instance(TopologyFamily::Brite, Scale::Smoke, 13).unwrap();
    let config = experiment_config();
    for fraction in [0.25, 0.5] {
        let scenario = ScenarioConfig {
            congested_fraction: 0.10,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            unidentifiable_fraction: fraction,
            ..ScenarioConfig::default()
        };
        let result = run_experiment(&base, &scenario, &config).unwrap();
        let corr = result.correlation_summary();
        let indep = result.independence_summary();
        assert!(
            corr.mean <= indep.mean + 0.02,
            "unidentifiable fraction {fraction}: correlation {} vs independence {}",
            corr.mean,
            indep.mean
        );
    }
}
