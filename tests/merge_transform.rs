//! Integration test: the merging transformation of Section 3.3 restores
//! identifiability at a coarser granularity, and tomography on the merged
//! graph recovers the merged links' congestion probabilities.

use netcorr::prelude::*;
use netcorr::topology::identifiability::{check_identifiability, IdentifiabilityConfig};
use netcorr::topology::merge::merge_indistinguishable;
use netcorr::topology::toy;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn merged_figure_1b_becomes_identifiable_and_measurable() {
    // Figure 1(b) is not identifiable...
    let original = toy::figure_1b();
    let before = check_identifiability(&original, IdentifiabilityConfig::default());
    assert!(!before.holds);

    // ...but after the merging transformation it is.
    let merged = merge_indistinguishable(&original).unwrap();
    let after = check_identifiability(&merged.instance, IdentifiabilityConfig::default());
    assert!(after.holds);
    assert_eq!(merged.instance.num_links(), 2);

    // Ground truth on the ORIGINAL topology: e1 and e2 fail together 30% of
    // the time, e3 fails independently 10% of the time.
    let model = CongestionModelBuilder::new(&original.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], 0.3)
        .independent(LinkId(2), 0.1)
        .build()
        .unwrap();
    let config = SimulationConfig {
        transmission: netcorr::sim::TransmissionModel::Exact,
        ..SimulationConfig::default()
    };
    let simulator = Simulator::new(&original, &model, config).unwrap();
    let mut rng = StdRng::seed_from_u64(2024);
    let observations = simulator.run(40_000, &mut rng);

    // The merged instance has the same paths (P1, P2), so the observations
    // carry over verbatim; run tomography on the merged graph.
    assert_eq!(merged.instance.num_paths(), original.num_paths());
    let estimate = CorrelationAlgorithm::new(&merged.instance)
        .infer(&observations)
        .unwrap();

    // Each merged link is {e_i, e3}; it is "congested" whenever either
    // component is congested: P = 1 - (1 - 0.3)(1 - 0.1) = 0.37.
    // (The threshold model makes the observable slightly smaller because a
    // barely-congested link does not always push the 2-hop path over t_p.)
    for merged_link in merged.instance.topology.link_ids() {
        let p = estimate.congestion_probability(merged_link);
        assert!(
            (p - 0.37).abs() < 0.06,
            "merged link {merged_link}: estimated {p}, expected about 0.37"
        );
        // The composition is recorded so the operator knows what the merged
        // probability refers to.
        let composition = &merged.merged_from[merged_link.index()];
        assert_eq!(composition.len(), 2);
        assert!(composition.contains(&LinkId(2)));
    }
}

#[test]
fn merging_the_single_set_extreme_yields_one_link_per_path() {
    let instance = toy::figure_1a_single_set();
    let merged = merge_indistinguishable(&instance).unwrap();
    assert_eq!(merged.instance.num_links(), merged.instance.num_paths());
    // Every merged link's congestion probability is directly measurable
    // from its (single-link) path: tomography degenerates to end-to-end
    // measurement, exactly as Section 3.3 argues.
    for path in merged.instance.paths.paths() {
        assert_eq!(path.links.len(), 1);
    }
    // And the merged instance is identifiable.
    let report = check_identifiability(&merged.instance, IdentifiabilityConfig::default());
    assert!(report.holds);
}
