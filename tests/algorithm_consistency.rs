//! Property-based integration tests: on randomly drawn congestion models
//! over the toy topologies, the algorithms agree with each other and with
//! the ground truth within the tolerance implied by the number of
//! snapshots.

use netcorr::prelude::*;
use netcorr::topology::toy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulates Figure 1(a) with the given probabilities and returns
/// (instance, observations, true marginals).
fn simulate_fig1a(
    joint: f64,
    e3: f64,
    e4: f64,
    snapshots: usize,
    seed: u64,
) -> (
    netcorr::topology::TopologyInstance,
    PathObservations,
    Vec<f64>,
) {
    let instance = toy::figure_1a();
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], joint)
        .independent(LinkId(2), e3)
        .independent(LinkId(3), e4)
        .build()
        .unwrap();
    let truth = model.marginals();
    let config = SimulationConfig {
        transmission: netcorr::sim::TransmissionModel::Exact,
        ..SimulationConfig::default()
    };
    let simulator = Simulator::new(&instance, &model, config).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let observations = simulator.run(snapshots, &mut rng);
    (instance, observations, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The correlation algorithm recovers the marginals of arbitrary
    /// Figure 1(a) models (correlated pair + two independent links).
    #[test]
    fn correlation_algorithm_recovers_random_models(
        joint in 0.05f64..0.6,
        e3 in 0.05f64..0.5,
        e4 in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let (instance, observations, truth) = simulate_fig1a(joint, e3, e4, 12_000, seed);
        let estimate = CorrelationAlgorithm::new(&instance).infer(&observations).unwrap();
        for link in instance.topology.link_ids() {
            let err = (estimate.congestion_probability(link) - truth[link.index()]).abs();
            prop_assert!(err < 0.08, "link {link}: error {err}");
        }
    }

    /// The exact theorem algorithm and the practical correlation algorithm
    /// agree on identifiable instances.
    #[test]
    fn theorem_and_practical_algorithms_agree(
        joint in 0.05f64..0.6,
        e3 in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let (instance, observations, _) = simulate_fig1a(joint, e3, 0.1, 12_000, seed);
        let practical = CorrelationAlgorithm::new(&instance).infer(&observations).unwrap();
        let exact = TheoremAlgorithm::new(&instance).infer(&observations).unwrap();
        for link in instance.topology.link_ids() {
            let a = practical.congestion_probability(link);
            let b = exact.estimate.congestion_probability(link);
            prop_assert!((a - b).abs() < 0.08, "link {link}: practical {a}, exact {b}");
        }
    }

    /// Inferred probabilities are always valid probabilities, whatever the
    /// model.
    #[test]
    fn estimates_are_always_in_the_unit_interval(
        joint in 0.0f64..0.9,
        e3 in 0.0f64..0.9,
        e4 in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let (instance, observations, _) = simulate_fig1a(joint, e3, e4, 2_000, seed);
        for estimate in [
            CorrelationAlgorithm::new(&instance).infer(&observations).unwrap(),
            IndependenceAlgorithm::new(&instance).infer(&observations).unwrap(),
        ] {
            for link in instance.topology.link_ids() {
                let p = estimate.congestion_probability(link);
                prop_assert!((0.0..=1.0).contains(&p), "link {link}: {p}");
            }
        }
    }
}

/// The independence baseline and the correlation algorithm coincide when
/// the declared correlation sets are all singletons (then "respecting
/// correlation" excludes nothing).
#[test]
fn algorithms_coincide_without_correlation_sets() {
    let instance = toy::figure_1a().with_singleton_correlation();
    let model = CongestionModelBuilder::new(&instance.correlation)
        .independent(LinkId(0), 0.2)
        .independent(LinkId(1), 0.3)
        .independent(LinkId(2), 0.1)
        .independent(LinkId(3), 0.15)
        .build()
        .unwrap();
    let simulator = Simulator::new(&instance, &model, SimulationConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let observations = simulator.run(10_000, &mut rng);
    let corr = CorrelationAlgorithm::new(&instance)
        .infer(&observations)
        .unwrap();
    let indep = IndependenceAlgorithm::new(&instance)
        .infer(&observations)
        .unwrap();
    for link in instance.topology.link_ids() {
        assert!(
            (corr.congestion_probability(link) - indep.congestion_probability(link)).abs() < 1e-9,
            "link {link}"
        );
    }
}
