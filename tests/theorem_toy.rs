//! Integration test: the paper's worked example (Sections 3.1, 3.2 and the
//! Appendix A illustration) on the toy topologies of Figure 1.

use std::collections::BTreeSet;

use netcorr::prelude::*;
use netcorr::topology::toy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The coverage table of Section 3.1 for Figure 1(a): every correlation
/// subset covers a distinct set of paths.
#[test]
fn figure_1a_coverage_table_matches_the_paper() {
    let instance = toy::figure_1a();
    let coverage = |links: &[LinkId]| -> BTreeSet<usize> {
        instance
            .paths
            .coverage(links)
            .into_iter()
            .map(|p| p.index())
            .collect()
    };
    assert_eq!(coverage(&[LinkId(0)]), BTreeSet::from([0]));
    assert_eq!(coverage(&[LinkId(1)]), BTreeSet::from([1, 2]));
    assert_eq!(coverage(&[LinkId(0), LinkId(1)]), BTreeSet::from([0, 1, 2]));
    assert_eq!(coverage(&[LinkId(2)]), BTreeSet::from([0, 1]));
    assert_eq!(coverage(&[LinkId(3)]), BTreeSet::from([2]));

    // All five correlation subsets have distinct coverage (Assumption 4).
    let subsets = instance.correlation.all_correlation_subsets(16).unwrap();
    assert_eq!(subsets.len(), 5);
    let coverages: BTreeSet<Vec<usize>> = subsets
        .iter()
        .map(|s| coverage(s).into_iter().collect())
        .collect();
    assert_eq!(coverages.len(), 5);
}

/// The coverage table of Section 3.1 for Figure 1(b): {e1, e2} and {e3}
/// cover the same paths, so Assumption 4 fails.
#[test]
fn figure_1b_coverage_collision_matches_the_paper() {
    let instance = toy::figure_1b();
    let both = instance.paths.coverage(&[LinkId(0), LinkId(1)]);
    let e3 = instance.paths.coverage(&[LinkId(2)]);
    assert_eq!(both, e3);
    // And the exact algorithm refuses to run on it.
    let mut observations = PathObservations::new(2);
    for i in 0..64 {
        observations
            .record_snapshot(&[i % 3 == 0, i % 5 == 0])
            .unwrap();
    }
    let err = TheoremAlgorithm::new(&instance)
        .infer(&observations)
        .unwrap_err();
    assert!(matches!(
        err,
        netcorr::core::CoreError::Unidentifiable { .. }
    ));
}

/// Section 3.2's walk-through, numerically: with the canonical correlated
/// model on Figure 1(a), the identified congestion factors match their
/// defining ratios and the per-link probabilities follow by Lemma 3.
#[test]
fn figure_1a_congestion_factors_and_marginals() {
    let instance = toy::figure_1a();
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], 0.2)
        .independent(LinkId(2), 0.1)
        .independent(LinkId(3), 0.1)
        .build()
        .unwrap();
    let config = SimulationConfig {
        transmission: netcorr::sim::TransmissionModel::Exact,
        ..SimulationConfig::default()
    };
    let simulator = Simulator::new(&instance, &model, config).unwrap();
    let mut rng = StdRng::seed_from_u64(321);
    let observations = simulator.run(60_000, &mut rng);

    let result = TheoremAlgorithm::new(&instance)
        .infer(&observations)
        .unwrap();

    // Step 1 of Section 3.2: α_{e1} is measured directly and is 0 here
    // (e1 is never congested alone).
    let alpha = |links: &[LinkId]| -> f64 {
        let mut sorted = links.to_vec();
        sorted.sort_unstable();
        result
            .factors
            .iter()
            .find(|f| f.links == sorted)
            .expect("factor exists")
            .alpha
    };
    assert!(alpha(&[LinkId(0)]) < 0.05);
    assert!(alpha(&[LinkId(1)]) < 0.05);
    // α_{e1,e2} = 0.2 / 0.8 = 0.25, α_{e3} = α_{e4} = 0.1 / 0.9 ≈ 0.111.
    assert!((alpha(&[LinkId(0), LinkId(1)]) - 0.25).abs() < 0.06);
    assert!((alpha(&[LinkId(2)]) - 1.0 / 9.0).abs() < 0.04);
    assert!((alpha(&[LinkId(3)]) - 1.0 / 9.0).abs() < 0.04);

    // Lemma 3: the marginals follow.
    let truth = model.marginals();
    for link in instance.topology.link_ids() {
        assert!(
            (result.estimate.congestion_probability(link) - truth[link.index()]).abs() < 0.05,
            "link {link}"
        );
    }

    // Step 4 of Section 3.2: joint probabilities across correlation sets
    // multiply, e.g. P(X_{e1} = 1, X_{e3} = 1) = P(X_{e1} = 1) P(X_{e3} = 1).
    let joint = result
        .joint_congestion_probability(&[LinkId(0), LinkId(2)])
        .unwrap();
    assert!((joint - 0.02).abs() < 0.02);
}

/// The practical algorithm forms exactly the four equations of Section 4 on
/// Figure 1(a) and solves them exactly.
#[test]
fn figure_1a_practical_algorithm_uses_the_papers_equations() {
    let instance = toy::figure_1a();
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], 0.25)
        .independent(LinkId(2), 0.1)
        .independent(LinkId(3), 0.2)
        .build()
        .unwrap();
    let simulator = Simulator::new(&instance, &model, SimulationConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let observations = simulator.run(20_000, &mut rng);
    let estimate = CorrelationAlgorithm::new(&instance)
        .infer(&observations)
        .unwrap();
    assert_eq!(estimate.diagnostics.num_single_path_equations, 3);
    assert_eq!(estimate.diagnostics.num_pair_equations, 1);
    assert!(!estimate.diagnostics.underdetermined);
    let truth = model.marginals();
    for link in instance.topology.link_ids() {
        assert!(
            (estimate.congestion_probability(link) - truth[link.index()]).abs() < 0.06,
            "link {link}: {} vs {}",
            estimate.congestion_probability(link),
            truth[link.index()]
        );
    }
}
