//! Deterministic-seed regression tests for the scenario builder and the
//! simulator.
//!
//! The whole evaluation pipeline keys its reproducibility off `u64` seeds
//! (`ExperimentConfig::base_seed` plus per-trial offsets), so the contract
//! "same seed ⇒ bit-identical run, different seed ⇒ different run" must
//! hold end to end: scenario construction and measurement simulation.

use netcorr::eval::runner::{sharded_observations, sharded_perturbed_observations};
use netcorr::eval::scenario::ScenarioConfig;
use netcorr::prelude::*;
use netcorr::sim::{
    mask_missing_rows, GilbertElliottConfig, LossDriftConfig, MissingRowsConfig,
    PerturbationConfig, PerturbedSimulator, RoutingChurnConfig,
};
use netcorr::topology::generators::planetlab::{self, PlanetLabConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_instance() -> netcorr::topology::TopologyInstance {
    planetlab::generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(100))
        .expect("topology generation succeeds")
}

fn build_scenario(base: &netcorr::topology::TopologyInstance, seed: u64) -> CongestionScenario {
    let builder = ScenarioBuilder::new(ScenarioConfig::default()).expect("valid config");
    builder
        .build(base, &mut StdRng::seed_from_u64(seed))
        .expect("scenario build succeeds")
}

fn simulate(scenario: &CongestionScenario, seed: u64, snapshots: usize) -> PathObservations {
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("simulator construction succeeds");
    simulator.run(snapshots, &mut StdRng::seed_from_u64(seed))
}

#[test]
fn same_seed_produces_identical_scenario_and_observations() {
    let base = base_instance();

    let scenario_a = build_scenario(&base, 5);
    let scenario_b = build_scenario(&base, 5);
    assert_eq!(
        scenario_a.congested_links, scenario_b.congested_links,
        "scenario builder drew different congested links from the same seed"
    );
    assert_eq!(
        scenario_a.true_marginals, scenario_b.true_marginals,
        "scenario builder drew different ground-truth marginals from the same seed"
    );

    let observations_a = simulate(&scenario_a, 9, 200);
    let observations_b = simulate(&scenario_b, 9, 200);
    assert_eq!(
        observations_a, observations_b,
        "simulator produced different traces from the same seed"
    );
}

#[test]
fn different_simulation_seeds_produce_different_traces() {
    let base = base_instance();
    let scenario = build_scenario(&base, 5);

    let observations_a = simulate(&scenario, 9, 200);
    let observations_b = simulate(&scenario, 10, 200);
    assert_eq!(observations_a.num_snapshots(), 200);
    assert_ne!(
        observations_a, observations_b,
        "200 snapshots from different seeds should not be bit-identical"
    );
}

#[test]
fn different_scenario_seeds_produce_different_ground_truth() {
    let base = base_instance();
    let scenario_a = build_scenario(&base, 5);
    let scenario_b = build_scenario(&base, 6);
    assert!(
        scenario_a.congested_links != scenario_b.congested_links
            || scenario_a.true_marginals != scenario_b.true_marginals,
        "different scenario seeds drew identical scenarios"
    );
}

/// A perturbation exercising every family at once (all seeded streams in
/// play), used by the reproducibility properties below.
fn every_perturbation() -> PerturbationConfig {
    PerturbationConfig {
        gilbert_elliott: Some(GilbertElliottConfig::with_intensity(0.4)),
        loss_drift: Some(LossDriftConfig::with_intensity(0.5)),
        missing_rows: Some(MissingRowsConfig::with_intensity(0.2)),
        routing_churn: Some(RoutingChurnConfig::with_intensity(0.3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential property: wrapping the simulator in a
    /// `PerturbationConfig::none()` perturbation layer is bit-invisible —
    /// for any seed and shard count the perturbed pipeline produces
    /// exactly the observations of the plain simulator.
    #[test]
    fn none_perturbation_is_bit_identical_to_the_plain_simulator(
        seed in 0u64..10_000,
        shards in 0usize..8,
        snapshots in 150usize..400,
    ) {
        let base = base_instance();
        let scenario = build_scenario(&base, seed ^ 0xabcd);
        let simulator = Simulator::new(
            &scenario.instance,
            &scenario.model,
            SimulationConfig::default(),
        )
        .expect("simulator construction succeeds");
        let perturbed = PerturbedSimulator::new(
            &scenario.instance,
            &scenario.model,
            SimulationConfig::default(),
            PerturbationConfig::none(),
        )
        .expect("perturbed simulator construction succeeds");

        let plain = sharded_observations(&simulator, snapshots, seed, shards);
        let wrapped = sharded_perturbed_observations(&perturbed, snapshots, seed, shards);
        prop_assert_eq!(&plain, &wrapped);
        // And both agree with the unsharded reference run.
        prop_assert_eq!(&plain, &simulator.run_seeded(snapshots, seed));
    }

    /// Bit-reproducibility of perturbed trials: a trial is a pure function
    /// of `(seed, PerturbationConfig)` — any shard count reproduces it,
    /// and a different seed produces a different trial.
    #[test]
    fn perturbed_trials_are_reproducible_from_seed_and_config(
        seed in 0u64..10_000,
        shards in 2usize..8,
    ) {
        let base = base_instance();
        let scenario = build_scenario(&base, seed ^ 0x7777);
        let perturbed = PerturbedSimulator::new(
            &scenario.instance,
            &scenario.model,
            SimulationConfig::default(),
            every_perturbation(),
        )
        .expect("perturbed simulator construction succeeds");

        let reference = sharded_perturbed_observations(&perturbed, 300, seed, 1);
        let sharded = sharded_perturbed_observations(&perturbed, 300, seed, shards);
        prop_assert_eq!(&reference, &sharded);
        let other_seed = sharded_perturbed_observations(&perturbed, 300, seed ^ 1, 1);
        prop_assert_ne!(&reference, &other_seed);
    }
}

#[test]
fn missing_row_masking_commutes_with_sharding() {
    // Satellite property: dropping rows then sharding equals sharding
    // then dropping, for the shard counts the runner actually resolves
    // (0 = auto, 1 = sequential, and genuinely parallel counts).
    let base = base_instance();
    let scenario = build_scenario(&base, 11);
    let config = SimulationConfig::default();
    let drop_fraction = 0.35;
    let snapshots = 320;
    let seed = 4242;

    let clean = PerturbedSimulator::new(
        &scenario.instance,
        &scenario.model,
        config,
        PerturbationConfig::none(),
    )
    .expect("clean simulator construction succeeds");
    let missing = PerturbedSimulator::new(
        &scenario.instance,
        &scenario.model,
        config,
        PerturbationConfig {
            missing_rows: Some(MissingRowsConfig { drop_fraction }),
            ..PerturbationConfig::none()
        },
    )
    .expect("missing-rows simulator construction succeeds");

    // Mask applied to the full, unsharded run.
    let full = clean.run_seeded(snapshots, seed);
    let masked_whole = mask_missing_rows(&full, seed, drop_fraction, 0);

    for shards in [0usize, 1, 2, 7] {
        // Drop during simulation, shard the measurement.
        let inline = sharded_perturbed_observations(&missing, snapshots, seed, shards);
        assert_eq!(
            inline, masked_whole,
            "inline dropping with {shards} shards diverged from post-masking the full run"
        );
    }

    // Shard first, mask each shard with its global snapshot offset, then
    // concatenate: the mask is a pure function of the global snapshot
    // index, so the shard boundary is invisible.
    let plan = clean.plan(snapshots, seed);
    let split = 192; // word-aligned: 3 x 64-snapshot words
    let mut first = clean.run_range_planned(0..split, seed, &plan);
    let second = clean.run_range_planned(split..snapshots, seed, &plan);
    let mut masked_parts = mask_missing_rows(&first, seed, drop_fraction, 0);
    masked_parts
        .concat(&mask_missing_rows(&second, seed, drop_fraction, split))
        .expect("shards share the path count");
    first.concat(&second).expect("shards share the path count");
    assert_eq!(
        first, full,
        "unmasked shard concat diverged from the full run"
    );
    assert_eq!(
        masked_parts, masked_whole,
        "mask-then-concat diverged from concat-then-mask"
    );
}
