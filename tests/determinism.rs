//! Deterministic-seed regression tests for the scenario builder and the
//! simulator.
//!
//! The whole evaluation pipeline keys its reproducibility off `u64` seeds
//! (`ExperimentConfig::base_seed` plus per-trial offsets), so the contract
//! "same seed ⇒ bit-identical run, different seed ⇒ different run" must
//! hold end to end: scenario construction and measurement simulation.

use netcorr::eval::scenario::ScenarioConfig;
use netcorr::prelude::*;
use netcorr::topology::generators::planetlab::{self, PlanetLabConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_instance() -> netcorr::topology::TopologyInstance {
    planetlab::generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(100))
        .expect("topology generation succeeds")
}

fn build_scenario(base: &netcorr::topology::TopologyInstance, seed: u64) -> CongestionScenario {
    let builder = ScenarioBuilder::new(ScenarioConfig::default()).expect("valid config");
    builder
        .build(base, &mut StdRng::seed_from_u64(seed))
        .expect("scenario build succeeds")
}

fn simulate(scenario: &CongestionScenario, seed: u64, snapshots: usize) -> PathObservations {
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("simulator construction succeeds");
    simulator.run(snapshots, &mut StdRng::seed_from_u64(seed))
}

#[test]
fn same_seed_produces_identical_scenario_and_observations() {
    let base = base_instance();

    let scenario_a = build_scenario(&base, 5);
    let scenario_b = build_scenario(&base, 5);
    assert_eq!(
        scenario_a.congested_links, scenario_b.congested_links,
        "scenario builder drew different congested links from the same seed"
    );
    assert_eq!(
        scenario_a.true_marginals, scenario_b.true_marginals,
        "scenario builder drew different ground-truth marginals from the same seed"
    );

    let observations_a = simulate(&scenario_a, 9, 200);
    let observations_b = simulate(&scenario_b, 9, 200);
    assert_eq!(
        observations_a, observations_b,
        "simulator produced different traces from the same seed"
    );
}

#[test]
fn different_simulation_seeds_produce_different_traces() {
    let base = base_instance();
    let scenario = build_scenario(&base, 5);

    let observations_a = simulate(&scenario, 9, 200);
    let observations_b = simulate(&scenario, 10, 200);
    assert_eq!(observations_a.num_snapshots(), 200);
    assert_ne!(
        observations_a, observations_b,
        "200 snapshots from different seeds should not be bit-identical"
    );
}

#[test]
fn different_scenario_seeds_produce_different_ground_truth() {
    let base = base_instance();
    let scenario_a = build_scenario(&base, 5);
    let scenario_b = build_scenario(&base, 6);
    assert!(
        scenario_a.congested_links != scenario_b.congested_links
            || scenario_a.true_marginals != scenario_b.true_marginals,
        "different scenario seeds drew identical scenarios"
    );
}
