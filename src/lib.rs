//! # netcorr — Network Tomography on Correlated Links
//!
//! A full reproduction of *"Network Tomography on Correlated Links"*
//! (Ghita, Argyraki, Thiran — IMC 2010) as a reusable Rust library.
//!
//! Network performance tomography infers the characteristics of individual
//! network links from end-to-end path measurements. Classical Boolean
//! tomography assumes that links fail (become congested) independently of
//! one another; the paper — and this crate — lifts that assumption: links
//! may be **correlated** within known *correlation sets* (for example, all
//! links of one local-area network or one administrative domain), and the
//! per-link congestion probabilities remain identifiable from end-to-end
//! measurements as long as no two *correlation subsets* cover exactly the
//! same set of paths (the paper's Assumption 4).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`topology`] — network graph, paths, correlation sets, identifiability
//!   analysis, merging transformation, and topology generators (toy,
//!   BRITE-like two-level, PlanetLab-like traceroute-style).
//! * [`linalg`] — the dense linear-algebra substrate (QR least squares,
//!   simplex LP, minimum-L1-norm solutions).
//! * [`sim`] — the congestion simulator: correlated link-state sampling,
//!   packet-loss model, per-snapshot packet-level path measurements.
//! * [`measure`] — empirical estimators of path-level probabilities from
//!   snapshot observations.
//! * [`core`] — the tomography algorithms: the paper's *correlation
//!   algorithm*, the *independence algorithm* baseline, and the exact
//!   *theorem algorithm* from the identifiability proof.
//! * [`eval`] — scenario generators, error metrics and the experiment
//!   harness that regenerates every figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use netcorr::prelude::*;
//! use rand::SeedableRng;
//!
//! // The toy topology of Figure 1(a): 4 links, 3 paths, links e1 and e2
//! // belong to the same correlation set.
//! let instance = netcorr::topology::toy::figure_1a();
//!
//! // Ground-truth congestion behaviour: e1 and e2 are congested together
//! // 20% of the time; e3 and e4 are independently congested 10% of the time.
//! let model = CongestionModelBuilder::new(&instance.correlation)
//!     .joint_group(&[LinkId(0), LinkId(1)], 0.2)
//!     .independent(LinkId(2), 0.1)
//!     .independent(LinkId(3), 0.1)
//!     .build()
//!     .unwrap();
//!
//! // Simulate 4000 snapshots of end-to-end measurements.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let simulator = Simulator::new(&instance, &model, SimulationConfig::default()).unwrap();
//! let observations = simulator.run(4000, &mut rng);
//!
//! // Run the correlation-aware tomography algorithm.
//! let estimate = CorrelationAlgorithm::new(&instance)
//!     .infer(&observations)
//!     .unwrap();
//!
//! // The inferred congestion probability of e1 is close to the truth (0.2).
//! let p = estimate.congestion_probability(LinkId(0));
//! assert!((p - 0.2).abs() < 0.05, "estimated {p}");
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (LAN monitoring,
//! inter-domain SLA monitoring, unknown correlation patterns) and
//! `EXPERIMENTS.md` for the reproduction of the paper's evaluation.

pub use netcorr_core as core;
pub use netcorr_eval as eval;
pub use netcorr_linalg as linalg;
pub use netcorr_measure as measure;
pub use netcorr_sim as sim;
pub use netcorr_topology as topology;

/// Convenience prelude bringing the most frequently used types into scope.
pub mod prelude {
    pub use netcorr_core::{
        CorrelationAlgorithm, IndependenceAlgorithm, TheoremAlgorithm, TomographyEstimate,
    };
    pub use netcorr_eval::{
        metrics::{absolute_errors, ErrorSummary},
        scenario::{CongestionScenario, CorrelationLevel, ScenarioBuilder},
    };
    pub use netcorr_measure::{PathObservations, ProbabilityEstimator};
    pub use netcorr_sim::{CongestionModel, CongestionModelBuilder, SimulationConfig, Simulator};
    pub use netcorr_topology::{
        correlation::CorrelationPartition,
        graph::{LinkId, NodeId, Topology},
        path::{Path, PathId, PathSet},
        TopologyInstance,
    };
}
