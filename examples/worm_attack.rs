//! Unknown correlation patterns: the worm / flooding scenario of Figure 5.
//!
//! A worm periodically orders compromised hosts to flood a set of otherwise
//! unrelated links, so links from *different* correlation sets become
//! correlated — but the operator has no way to know this, so the
//! correlation partition handed to the tomography algorithms does not
//! record the pattern ("mislabeled" links).
//!
//! This example runs the *measured* worm scenario of the robustness suite
//! (`netcorr::eval::robustness::run_worm_scenario`): PlanetLab-style
//! topologies with half of the congested links flooded together by the
//! worm, pooled over several seeded trials, scoring the correlation-aware
//! algorithm against the independence baseline. The paper's Figure 5
//! observation — the correlation algorithm only ignores *one* correlation
//! pattern (the worm), the baseline ignores all of them, so the
//! correlation algorithm still comes out ahead — is **asserted**, not just
//! printed: the same `WormOutcome::check` guards the robustness matrix,
//! `netcorr-robustness` and `bench_gate`.
//!
//! Run with `cargo run --release --example worm_attack`.

use netcorr::eval::robustness::{run_worm_scenario, RobustnessConfig, WORM_SNAPSHOTS, WORM_TRIALS};

fn main() {
    let seed = RobustnessConfig::smoke().base_seed;
    println!("Worm-attack scenario (PlanetLab-style topologies)");
    println!(
        "  {WORM_TRIALS} trials x {WORM_SNAPSHOTS} snapshots, half of the congested links \
         flooded together by the worm, seed {seed}"
    );

    let outcome = run_worm_scenario(seed).expect("worm scenario runs");
    println!(
        "  {} potentially congested links scored, {} of them worm-flooded (mislabeled)",
        outcome.links_scored, outcome.mislabeled_links
    );

    println!("\nAccuracy over the potentially congested links (pooled):");
    println!(
        "  correlation algorithm: mean {:.3}, 90th percentile {:.3}",
        outcome.correlation.mean, outcome.correlation.p90
    );
    println!(
        "  independence baseline: mean {:.3}, 90th percentile {:.3}",
        outcome.independence.mean, outcome.independence.p90
    );

    println!("\nError restricted to the worm's target links:");
    println!(
        "  correlation algorithm: mean {:.3}; independence baseline: mean {:.3}",
        outcome.correlation_mislabeled_mean, outcome.independence_mislabeled_mean
    );

    // The Figure 5 claim as a hard assertion: a regression that makes the
    // correlation algorithm lose to the baseline under the worm fails
    // this example the same way it fails the robustness gate.
    outcome.check().expect("Figure 5 claim holds");
    println!(
        "\nEven though the worm's pattern is unknown to both algorithms, the correlation \
         algorithm ignores only that one pattern while the baseline ignores every correlation \
         set in the network — asserted: correlation mean {:.4} <= independence mean {:.4}.",
        outcome.correlation.mean, outcome.independence.mean
    );
}
