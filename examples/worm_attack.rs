//! Unknown correlation patterns: the worm / flooding scenario of Figure 5.
//!
//! A worm periodically orders compromised hosts to flood a set of otherwise
//! unrelated links, so links from *different* correlation sets become
//! correlated — but the operator has no way to know this, so the
//! correlation partition handed to the tomography algorithms does not
//! record the pattern ("mislabeled" links).
//!
//! The example builds a PlanetLab-style topology, mislabels half of the
//! congested links, and compares the correlation-aware algorithm with the
//! independence baseline: the correlation algorithm only ignores *one*
//! correlation pattern (the worm), the baseline ignores all of them, so the
//! correlation algorithm still comes out ahead — the paper's Figure 5
//! observation.
//!
//! Run with `cargo run --release --example worm_attack`.

use netcorr::eval::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use netcorr::eval::scenario::{CorrelationLevel, ScenarioBuilder, ScenarioConfig};
use netcorr::prelude::*;
use netcorr::topology::generators::planetlab::{generate, PlanetLabConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1337);
    let base = generate(&PlanetLabConfig::small(), &mut rng).expect("topology generation succeeds");
    println!("Worm-attack scenario (PlanetLab-style topology)");
    println!(
        "  {} links, {} traceroute-style paths, {} correlation sets",
        base.num_links(),
        base.num_paths(),
        base.num_correlation_sets()
    );

    // Half of the congested links participate in the worm's unknown
    // correlation pattern.
    let scenario_config = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        mislabeled_fraction: 0.5,
        ..ScenarioConfig::default()
    };
    let scenario = ScenarioBuilder::new(scenario_config)
        .expect("valid scenario config")
        .build(&base, &mut rng)
        .expect("scenario can be instantiated");
    println!(
        "  {} congested links, of which {} are flooded together by the worm (mislabeled)",
        scenario.congested_links.len(),
        scenario.mislabeled_links.len()
    );

    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("valid simulator");
    let observations = simulator.run(1500, &mut rng);

    let correlation = CorrelationAlgorithm::new(&scenario.instance)
        .infer(&observations)
        .expect("correlation algorithm succeeds");
    let independence = IndependenceAlgorithm::new(&scenario.instance)
        .infer(&observations)
        .expect("independence baseline succeeds");

    let links = potentially_congested_links(&scenario.instance, &observations);
    let corr = ErrorSummary::from_errors(&absolute_errors(
        &correlation,
        &scenario.true_marginals,
        &links,
    ));
    let indep = ErrorSummary::from_errors(&absolute_errors(
        &independence,
        &scenario.true_marginals,
        &links,
    ));
    println!(
        "\nAccuracy over {} potentially congested links:",
        links.len()
    );
    println!(
        "  correlation algorithm: mean {:.3}, 90th percentile {:.3}",
        corr.mean, corr.p90
    );
    println!(
        "  independence baseline: mean {:.3}, 90th percentile {:.3}",
        indep.mean, indep.p90
    );

    // Error restricted to the mislabeled links themselves.
    let corr_mislabeled = ErrorSummary::from_errors(&absolute_errors(
        &correlation,
        &scenario.true_marginals,
        &scenario.mislabeled_links,
    ));
    let indep_mislabeled = ErrorSummary::from_errors(&absolute_errors(
        &independence,
        &scenario.true_marginals,
        &scenario.mislabeled_links,
    ));
    println!("\nError restricted to the worm's target links:");
    println!(
        "  correlation algorithm: mean {:.3}; independence baseline: mean {:.3}",
        corr_mislabeled.mean, indep_mislabeled.mean
    );
    println!(
        "\nEven though the worm's pattern is unknown to both algorithms, the correlation \
         algorithm ignores only that one pattern while the baseline ignores every correlation \
         set in the network."
    );
}
