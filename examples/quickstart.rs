//! Quickstart: the paper's Figure 1(a) example, end to end.
//!
//! Builds the toy topology of Figure 1(a), defines a correlated congestion
//! process (links e1 and e2 fail together), simulates end-to-end
//! measurements, and runs all three inference algorithms:
//!
//! * the correlation-aware practical algorithm (Section 4),
//! * the independence baseline,
//! * the exact "theorem algorithm" (Appendix A), which also identifies
//!   joint congestion probabilities.
//!
//! Run with `cargo run --example quickstart`.

use netcorr::prelude::*;
use netcorr::topology::toy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Topology: Figure 1(a). ---
    let instance = toy::figure_1a();
    println!("Topology: Figure 1(a)");
    println!(
        "  {} nodes, {} links, {} paths, {} correlation sets",
        instance.topology.num_nodes(),
        instance.num_links(),
        instance.num_paths(),
        instance.num_correlation_sets()
    );
    for (set, links) in instance.correlation.sets() {
        let names: Vec<String> = links.iter().map(|l| l.to_string()).collect();
        println!("  correlation set {set}: {{{}}}", names.join(", "));
    }

    // --- Ground truth: e1 and e2 are congested together 20% of the time
    // (they share a hidden physical resource); e3 and e4 are independently
    // congested 10% of the time. ---
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], 0.20)
        .independent(LinkId(2), 0.10)
        .independent(LinkId(3), 0.10)
        .build()
        .expect("valid congestion model");
    let truth = model.marginals();

    // --- Simulate unicast end-to-end measurements. ---
    let mut rng = StdRng::seed_from_u64(2010);
    let simulator =
        Simulator::new(&instance, &model, SimulationConfig::default()).expect("valid simulator");
    let observations = simulator.run(5000, &mut rng);
    println!(
        "\nSimulated {} snapshots of {} paths each.",
        observations.num_snapshots(),
        observations.num_paths()
    );

    // --- Infer link congestion probabilities. ---
    let correlation = CorrelationAlgorithm::new(&instance)
        .infer(&observations)
        .expect("correlation algorithm succeeds");
    let independence = IndependenceAlgorithm::new(&instance)
        .infer(&observations)
        .expect("independence baseline succeeds");
    let exact = TheoremAlgorithm::new(&instance)
        .infer(&observations)
        .expect("theorem algorithm succeeds");

    println!("\nPer-link congestion probabilities (true vs. inferred):");
    println!(
        "{:>6} {:>8} {:>13} {:>13} {:>10}",
        "link", "truth", "correlation", "independence", "theorem"
    );
    for (name, link) in toy::figure_1a_link_names() {
        println!(
            "{:>6} {:>8.3} {:>13.3} {:>13.3} {:>10.3}",
            name,
            truth[link.index()],
            correlation.congestion_probability(link),
            independence.congestion_probability(link),
            exact.estimate.congestion_probability(link)
        );
    }

    println!(
        "\nEquations used by the correlation algorithm: N1 = {} single-path, N2 = {} path-pair \
         (|E| = {}).",
        correlation.diagnostics.num_single_path_equations,
        correlation.diagnostics.num_pair_equations,
        instance.num_links()
    );

    // --- The theorem algorithm also identifies joint probabilities. ---
    let joint = exact
        .joint_congestion_probability(&[LinkId(0), LinkId(1)])
        .expect("e1 and e2 are a known correlation subset");
    let product = exact.estimate.congestion_probability(LinkId(0))
        * exact.estimate.congestion_probability(LinkId(1));
    println!("\nJoint congestion probability of e1 and e2:");
    println!("  identified jointly: {joint:.3} (truth: 0.200)");
    println!(
        "  product of marginals (what independence would claim): {product:.3} \
         (the truth would be 0.040 only if e1 and e2 were independent)"
    );

    let worst = toy::figure_1a_link_names()
        .into_iter()
        .map(|(_, l)| (correlation.congestion_probability(l) - truth[l.index()]).abs())
        .fold(0.0_f64, f64::max);
    println!("\nLargest absolute error of the correlation algorithm: {worst:.3}");
    assert!(worst < 0.1, "the quickstart example should be accurate");
}
