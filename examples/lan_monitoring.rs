//! LAN monitoring (the scenario of Figure 2(a)).
//!
//! An operator uses traceroute to discover her campus network and misses
//! the Ethernet switch at the centre of a LAN: the four router-to-router
//! logical links all cross the same hidden switch, so they are potentially
//! correlated and the operator assigns them to one correlation set. Access
//! links of the measurement hosts are independent.
//!
//! The example simulates a backplane fault that congests all four LAN links
//! together, plus an independently congested access link, and shows that
//! the correlation-aware algorithm attributes congestion correctly while
//! the independence baseline smears it across the LAN.
//!
//! Run with `cargo run --example lan_monitoring`.

use netcorr::prelude::*;
use netcorr::topology::toy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let instance = toy::figure_2a_lan();
    println!("LAN monitoring scenario (Figure 2(a))");
    println!(
        "  {} links, {} measurement paths, {} correlation sets",
        instance.num_links(),
        instance.num_paths(),
        instance.num_correlation_sets()
    );

    // Links l1..l4 (ids 0..3) cross the hidden switch; l5..l8 (ids 4..7)
    // are the hosts' access links.
    let lan_links = [LinkId(0), LinkId(1), LinkId(2), LinkId(3)];
    // Ground truth: the switch backplane is overloaded 30% of the time,
    // congesting all four LAN links together; host b's access link is
    // independently congested 8% of the time.
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&lan_links, 0.30)
        .independent(LinkId(5), 0.08)
        .build()
        .expect("valid congestion model");
    let truth = model.marginals();

    let mut rng = StdRng::seed_from_u64(7);
    let simulator =
        Simulator::new(&instance, &model, SimulationConfig::default()).expect("valid simulator");
    let observations = simulator.run(4000, &mut rng);

    let correlation = CorrelationAlgorithm::new(&instance)
        .infer(&observations)
        .expect("correlation algorithm succeeds");
    let independence = IndependenceAlgorithm::new(&instance)
        .infer(&observations)
        .expect("independence baseline succeeds");

    let names = [
        "r1->r2", "r1->r3", "r4->r2", "r4->r3", "a->r1", "b->r4", "c->r1", "d->r4",
    ];
    println!("\nPer-link congestion probabilities:");
    println!(
        "{:>8} {:>8} {:>13} {:>13}",
        "link", "truth", "correlation", "independence"
    );
    let mut corr_worst = 0.0_f64;
    let mut indep_worst = 0.0_f64;
    for link in instance.topology.link_ids() {
        let t = truth[link.index()];
        let c = correlation.congestion_probability(link);
        let i = independence.congestion_probability(link);
        corr_worst = corr_worst.max((c - t).abs());
        indep_worst = indep_worst.max((i - t).abs());
        println!(
            "{:>8} {:>8.3} {:>13.3} {:>13.3}",
            names[link.index()],
            t,
            c,
            i
        );
    }
    println!(
        "\nLargest absolute error: correlation {corr_worst:.3}, independence {indep_worst:.3}"
    );

    // Operational question: which links exceed a 15% congestion-probability
    // service threshold?
    let threshold = 0.15;
    let flagged: Vec<&str> = instance
        .topology
        .link_ids()
        .filter(|&l| correlation.congestion_probability(l) > threshold)
        .map(|l| names[l.index()])
        .collect();
    println!("Links flagged above the {threshold:.0}% congestion threshold: {flagged:?}");
    assert!(
        flagged.iter().all(|n| n.starts_with('r')),
        "only LAN links should be flagged"
    );
}
