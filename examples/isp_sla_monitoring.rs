//! Inter-domain SLA monitoring (the scenario of Figure 2(b)).
//!
//! The operator of one administrative domain wants to know whether its
//! neighbouring domains honour their service-level agreements, without any
//! visibility into their internals (they run MPLS). The network graph is a
//! BRITE-style AS-level topology; links that share hidden router-level
//! infrastructure inside a domain form one correlation set.
//!
//! The example generates such a topology, injects congestion into a few
//! domains, infers every AS-level link's congestion probability from
//! end-to-end measurements, and reports which links would violate an SLA
//! that caps the congestion probability at 5%.
//!
//! Run with `cargo run --release --example isp_sla_monitoring`.

use netcorr::eval::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use netcorr::eval::scenario::{CorrelationLevel, ScenarioBuilder, ScenarioConfig};
use netcorr::prelude::*;
use netcorr::topology::generators::brite::{generate, BriteConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Generate the AS-level topology with its hidden router level. ---
    let mut rng = StdRng::seed_from_u64(99);
    let brite = generate(&BriteConfig::small(), &mut rng).expect("topology generation succeeds");
    let base = brite.instance;
    println!("Inter-domain monitoring scenario (BRITE-style topology)");
    println!(
        "  {} AS-level links, {} measurement paths, {} correlation sets, {} hidden router-level links",
        base.num_links(),
        base.num_paths(),
        base.num_correlation_sets(),
        brite.num_router_links
    );

    // --- Congestion scenario: 10% of the links congested, highly
    // correlated inside their domains. ---
    let scenario_config = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        ..ScenarioConfig::default()
    };
    let scenario = ScenarioBuilder::new(scenario_config)
        .expect("valid scenario config")
        .build(&base, &mut rng)
        .expect("scenario can be instantiated");
    println!(
        "  {} links are congested (ground truth), spread over the domains' correlation sets",
        scenario.congested_links.len()
    );

    // --- Simulate end-to-end measurements and infer. ---
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("valid simulator");
    let observations = simulator.run(1500, &mut rng);
    let correlation = CorrelationAlgorithm::new(&scenario.instance)
        .infer(&observations)
        .expect("correlation algorithm succeeds");
    let independence = IndependenceAlgorithm::new(&scenario.instance)
        .infer(&observations)
        .expect("independence baseline succeeds");

    // --- Accuracy over the potentially congested links. ---
    let links = potentially_congested_links(&scenario.instance, &observations);
    let corr_summary = ErrorSummary::from_errors(&absolute_errors(
        &correlation,
        &scenario.true_marginals,
        &links,
    ));
    let indep_summary = ErrorSummary::from_errors(&absolute_errors(
        &independence,
        &scenario.true_marginals,
        &links,
    ));
    println!(
        "\nAccuracy over {} potentially congested links:",
        links.len()
    );
    println!(
        "  correlation algorithm: mean error {:.3}, 90th percentile {:.3}",
        corr_summary.mean, corr_summary.p90
    );
    println!(
        "  independence baseline: mean error {:.3}, 90th percentile {:.3}",
        indep_summary.mean, indep_summary.p90
    );

    // --- SLA verdicts. ---
    let sla_threshold = 0.05;
    let mut true_violations = 0usize;
    let mut detected = 0usize;
    let mut false_alarms = 0usize;
    for link in scenario.instance.topology.link_ids() {
        let truly_violating = scenario.true_marginals[link.index()] > sla_threshold;
        let flagged = correlation.congestion_probability(link) > sla_threshold;
        if truly_violating {
            true_violations += 1;
            if flagged {
                detected += 1;
            }
        } else if flagged {
            false_alarms += 1;
        }
    }
    println!("\nSLA check (congestion probability must stay below {sla_threshold}):");
    println!(
        "  {true_violations} links truly violate the SLA; {detected} of them detected; {false_alarms} false alarms"
    );
    let endpoints: Vec<String> = scenario
        .congested_links
        .iter()
        .take(5)
        .map(|&l| {
            let link = scenario.instance.topology.link(l);
            format!(
                "{} -> {}",
                scenario.instance.topology.node(link.source).name,
                scenario.instance.topology.node(link.target).name
            )
        })
        .collect();
    println!("  example congested inter-domain links: {endpoints:?}");
}
