//! Identifiability analysis and the merging transformation (Section 3.3).
//!
//! Shows how to check Assumption 4 on a topology, list the conflicting
//! correlation subsets and the unidentifiable links, and apply the merging
//! transformation that restores identifiability at a coarser granularity.
//!
//! Run with `cargo run --example identifiability_report`.

use netcorr::topology::identifiability::{
    check_identifiability, node_heuristic_violations, IdentifiabilityConfig,
};
use netcorr::topology::merge::merge_indistinguishable;
use netcorr::topology::toy;
use netcorr::topology::TopologyInstance;

fn report(name: &str, instance: &TopologyInstance) {
    println!("== {name} ==");
    println!(
        "  {} links, {} paths, {} correlation sets",
        instance.num_links(),
        instance.num_paths(),
        instance.num_correlation_sets()
    );
    let analysis = check_identifiability(instance, IdentifiabilityConfig::default());
    println!("  Assumption 4 holds: {}", analysis.holds);
    for conflict in &analysis.conflicts {
        println!(
            "  conflict: {:?} and {:?} both cover {:?}",
            conflict.subset_a, conflict.subset_b, conflict.coverage
        );
    }
    if !analysis.unidentifiable_links.is_empty() {
        println!(
            "  unidentifiable links: {:?}",
            analysis.unidentifiable_links
        );
    }
    let nodes = node_heuristic_violations(instance);
    if !nodes.is_empty() {
        println!("  structural heuristic flags nodes: {nodes:?}");
    }
    println!();
}

fn main() {
    // Figure 1(a): identifiable.
    let fig1a = toy::figure_1a();
    report("Figure 1(a)", &fig1a);

    // Figure 1(b): NOT identifiable — {e1, e2} and {e3} cover the same
    // paths.
    let fig1b = toy::figure_1b();
    report("Figure 1(b)", &fig1b);

    // Apply the merging transformation of Section 3.3 to Figure 1(b).
    let merged = merge_indistinguishable(&fig1b).expect("merging succeeds");
    println!(
        "Merging transformation on Figure 1(b): removed nodes {:?}, {} rounds",
        merged.removed_nodes, merged.rounds
    );
    for (idx, composition) in merged.merged_from.iter().enumerate() {
        println!(
            "  merged link {} is composed of original links {:?}",
            netcorr::topology::LinkId(idx),
            composition
        );
    }
    report("Figure 1(b) after merging", &merged.instance);

    // The extreme case of Section 3.3: Figure 1(a) with every link in a
    // single correlation set collapses to one merged link per end-to-end
    // path — tomography can add nothing beyond the end-to-end measurements
    // themselves.
    let single = toy::figure_1a_single_set();
    report("Figure 1(a), all links in one correlation set", &single);
    let merged = merge_indistinguishable(&single).expect("merging succeeds");
    println!(
        "After merging, the single-set topology has {} links for {} paths — one merged link per \
         end-to-end path, exactly as Section 3.3 predicts.",
        merged.instance.num_links(),
        merged.instance.num_paths()
    );
    assert_eq!(merged.instance.num_links(), merged.instance.num_paths());
}
